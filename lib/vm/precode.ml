(** Pre-decoded execution engine for the 64-bit machine.

    The structural interpreter ({!Interp}) re-traverses the linked CFG on
    every run: each tick pattern-matches a boxed {!Sxe_ir.Instr.op} record,
    chases the block list, consults the mode/trace/watch/profile
    configuration, and pays an [Int64] box per counter bump. This module
    flattens each {!Sxe_ir.Cfg.func} once into arrays of decoded
    instructions — fields pulled out of the [op] records, jump targets
    resolved to flat code offsets, the canonical-mode re-extension decision
    and the static cost-model weights baked in at decode time — and
    executes them with a tight program-counter loop over native-int
    counters.

    Per-run decisions are hoisted out of the per-instruction path:
    - [mode] selects which decoded image to use (the two modes decode to
      different [ext] flags, cached separately);
    - [count_cycles] always accumulates (a native-int add) and the report
      is zeroed afterwards when disabled;
    - [trace]/[watch] are not supported here — {!Interp.run} routes runs
      with hooks to the structural engine;
    - [profile] is consulted only at control-flow ops, never per
      instruction.

    Decoded code is cached on the function itself (the {!Sxe_ir.Cfg}
    [vm_cache] slot) keyed by the function's generation counter, so the
    12-variant evaluation matrix, profile collection and reference runs
    re-decode only after the optimizer actually mutates a function.

    Observable behaviour — output, checksum, trap, return value {e and}
    the [executed]/[sext32]/[sext_sub]/[cycles] counters — is bit-identical
    to the structural engine; the differential-fuzz oracle cross-checks
    the two engines on every generated case. *)

open Sxe_util
open Sxe_ir
open Sxe_ir.Types

exception Trap of string

type cell =
  | IArr of { elem : aelem; data : int64 array }
  | FArr of float array
  | RArr of int array

type outcome = {
  output : string;
  checksum : int64;
  trap : string option;
  ret : int64 option;
  executed : int64;
  sext32 : int64;
  sext_sub : int64;
  zext32 : int64;
  zext_sub : int64;
  cycles : int64;
}

let max_alloc = 1 lsl 26
let max_depth = 2_500

let elem_load elem lext (raw : int64) =
  match (elem, lext) with
  | AI8, LZero -> Eval.zext8 raw
  | AI8, LSign -> Eval.sext8 raw
  | AI16, LZero -> Eval.zext16 raw
  | AI16, LSign -> Eval.sext16 raw
  | AI32, LZero -> Eval.zext32 raw
  | AI32, LSign -> Eval.sext32 raw
  | (AI64 | AF64 | ARef), _ -> raw

let elem_store elem (v : int64) =
  match elem with
  | AI8 -> Eval.zext8 v
  | AI16 -> Eval.zext16 v
  | AI32 -> Eval.zext32 v
  | AI64 | AF64 | ARef -> v

let checksum_mix c v = Int64.add (Int64.mul c 0x100000001b3L) v

(* Allocation-free comparison kit for the fused superinstruction
   handlers. [sx32] sign-extends the low 32 bits of a register into a
   native int: [Int64.to_int] keeps the low 62 bits, then bit 31 is
   shifted onto the native sign bit and back. Comparing two [sx32]
   images is exactly [Int64.compare (Eval.sext32 a) (Eval.sext32 b)] —
   without boxing a single intermediate. *)
let sx32 (v : int64) : int = (Int64.to_int v lsl 31) asr 31

let holds cond c =
  match cond with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let iholds cond (a : int) (b : int) =
  match cond with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

(* The integer binop kernel shared by every fused const+binop handler
   ([cbin.k] selects the operation, [kw] the shift/div width). Division
   traps exactly where the plain [PDiv]/[PRem] handlers do — the caller
   evaluates at the constituent's own slot, after its tick and charge.
   [zx] is the canonical flag: the canonical machine's 32-bit [LShr]
   zero-extends its left operand internally; the faithful machine shifts
   the full register ({!Eval.binop_faithful}) and relies on an explicit
   [Zext] guard for the canonical result. *)
let[@inline] bin_eval zx k kw lv rv =
  match k with
  | 0 -> Int64.add lv rv
  | 1 -> Int64.sub lv rv
  | 2 -> Int64.mul lv rv
  | 3 -> Int64.logand lv rv
  | 4 -> Int64.logor lv rv
  | 5 -> Int64.logxor lv rv
  | 6 ->
      Int64.shift_left lv
        (Int64.to_int (Int64.logand rv (if kw then 63L else 31L)))
  | 7 ->
      Int64.shift_right lv
        (Int64.to_int (Int64.logand rv (if kw then 63L else 31L)))
  | 8 ->
      let amt = Int64.to_int (Int64.logand rv (if kw then 63L else 31L)) in
      if kw || not zx then Int64.shift_right_logical lv amt
      else Int64.shift_right_logical (Eval.zext32 lv) amt
  | 9 ->
      if if kw then Int64.equal rv 0L else Int64.equal (Eval.low32 rv) 0L then
        raise (Trap "division-by-zero");
      if Int64.equal rv (-1L) then Int64.neg lv else Int64.div lv rv
  | _ ->
      if if kw then Int64.equal rv 0L else Int64.equal (Eval.low32 rv) 0L then
        raise (Trap "division-by-zero");
      if Int64.equal rv (-1L) then 0L else Int64.rem lv rv

let builtin_names =
  [ "print_int"; "print_long"; "print_double"; "checksum"; "checksum_double" ]

(* ------------------------------------------------------------------ *)
(* Decoded instructions                                                *)
(* ------------------------------------------------------------------ *)

(** Shared decoded payloads. Control transfers and array accesses appear
    both as plain opcodes and as tails of fused superinstructions, so
    their fields live in named records and each is executed by exactly
    one helper in [exec] — the fused handlers cannot drift from the
    plain ones. *)
type jm = {
  joff : int;  (** flat target offset; -1 = outside the function *)
  jsrc : int;  (** source bid, for the profile edge *)
  jdst : int;  (** target bid: profile edge + lazy fetch failure *)
}

type br = {
  bcond : cond;
  bw64 : bool;
  bl : int;
  brx : int;
  bso : int;  (** flat offset if taken; -1 = outside the function *)
  bno : int;  (** flat offset if not taken *)
  bsrc : int;
  bsob : int;
  bnob : int;
}

type ald = {
  ldst : int;
  larr : int;
  lidx : int;
  lelem : aelem;
  llext : lext;
  lsx : bool;  (** canonical re-extension of the destination *)
}

type ast = { sarr : int; sidx : int; ssrc : int; selem : aelem }

(** Fused const+binop payload ([k]: 0 Add, 1 Sub, 2 Mul, 3 And, 4 Or,
    5 Xor, 6 Shl, 7 AShr, 8 LShr, 9 Div, 10 Rem — [kw] is the shift/div
    width flag for [k >= 6]); [wd1] elides the constant's register write
    when liveness proved it dead, [c2] is the binop's static cost. Named
    so the chaining pass can embed it in a larger group. *)
type cbin = {
  d1 : int;
  v : int64;
  wd1 : bool;
  k : int;
  kw : bool;
  dst : int;
  l : int;
  r : int;
  ext : bool;
  c2 : int;
}

(** Fused mov+jmp payload; [mw] elides a dead mov. *)
type mvj = {
  mdst : int;
  msrc : int;
  mext : bool;
  mw : bool;
  mc2 : int;
  mj : jm;
}

(** Fused mov+br payload; [vw] elides a dead mov, [vc2] is the branch's
    static cost. *)
type mvb = {
  vdst : int;
  vsrc : int;
  vext : bool;
  vw : bool;
  vc2 : int;
  vb : br;
}

(** Chained const-binop pair with fuse-time operand forwarding. The
    second binop's operand sources [s2l]/[s2r] are resolved when the
    chain is built: 0 = register file, 1 = first binop's result,
    3 = first constant, 4 = second constant (the codes are shared with
    the [sbl]/[sbr]/[smv] fields of the longer chains, where 2 = second
    binop's result and 5 = the mov's value). [xw1]/[xw2] elide result
    writes that liveness proved dead after the whole group. *)
type bb = {
  a : cbin;
  hb : int;
  b2 : cbin;
  s2l : int;
  s2r : int;
  xw1 : bool;
  xw2 : bool;
}

(** One decoded instruction. [ext] marks destinations that the canonical
    "32-bit machine" re-extends ([I32] destination registers); faithful
    decodes always carry [ext = false]. Register fields are plain array
    indices; jump targets are flat code offsets ([-1] for a target outside
    the function, which reproduces the structural engine's fetch failure
    lazily). *)
type pi =
  | PNop  (** [JustExt]: ticks, costs 0, no effect *)
  | PConstI of { dst : int; v : int64 }  (** canonical sext pre-applied *)
  | PConstF of { dst : int; v : float }
  | PMovI of { dst : int; src : int; ext : bool }
  | PMovF of { dst : int; src : int }
  | PNegI of { dst : int; src : int; ext : bool }
  | PNotI of { dst : int; src : int; ext : bool }
  | PAdd of { dst : int; l : int; r : int; ext : bool }
  | PSub of { dst : int; l : int; r : int; ext : bool }
  | PMul of { dst : int; l : int; r : int; ext : bool }
  | PAnd of { dst : int; l : int; r : int; ext : bool }
  | POr of { dst : int; l : int; r : int; ext : bool }
  | PXor of { dst : int; l : int; r : int; ext : bool }
  | PShl of { dst : int; l : int; r : int; w64 : bool; ext : bool }
  | PAShr of { dst : int; l : int; r : int; w64 : bool; ext : bool }
  | PLShr of { dst : int; l : int; r : int; w64 : bool; ext : bool }
  | PDiv of { dst : int; l : int; r : int; w64 : bool; ext : bool }
  | PRem of { dst : int; l : int; r : int; w64 : bool; ext : bool }
  | PCmp of { dst : int; cond : cond; w64 : bool; l : int; r : int }
  | PSext32 of { r : int }
  | PSextSub of { r : int; sh : int }  (** shift-in/out amount: 56, 48 or 0 *)
  | PZext of { r : int; mask : int64 }
  | PFAdd of { dst : int; l : int; r : int }
  | PFSub of { dst : int; l : int; r : int }
  | PFMul of { dst : int; l : int; r : int }
  | PFDiv of { dst : int; l : int; r : int }
  | PFNeg of { dst : int; src : int }
  | PFCmp of { dst : int; cond : cond; l : int; r : int }
  | PItoF of { dst : int; src : int }  (** I2D and L2D: full-register convert *)
  | PD2I of { dst : int; src : int }
  | PD2L of { dst : int; src : int; ext : bool }
  | PNewArr of { dst : int; elem : aelem; len : int; ext : bool }
  | PArrLoad of ald
  | PArrStore of ast
  | PArrLen of { dst : int; arr : int }
  | PGLoadF of { dst : int; slot : int }
      (** global symbols are interned to dense process-wide slots at
          decode time; the per-access path is an array index, not a
          string-keyed hash lookup *)
  | PGLoadI32 of { dst : int; slot : int; sign : bool; ext : bool }
  | PGLoadI of { dst : int; slot : int; ext : bool }
  | PGStoreF of { slot : int; src : int }
  | PGStoreI32 of { slot : int; src : int }
  | PGStoreI of { slot : int; src : int }
  | PPrintI of { r : int; post_trap : bool }
      (** [post_trap]: the call named a destination; the builtin's effect
          happens, then ["missing-return"] (structural order) *)
  | PPrintF of { r : int; post_trap : bool }
  | PCheckI of { r : int; post_trap : bool }
  | PCheckF of { r : int; post_trap : bool }
  | PTrapOp of { msg : string }  (** statically-doomed op, e.g. bad builtin arity *)
  | PCallUser of {
      dst : int;
      expect : int;
      ext : bool;
      fn : string;
      fid : int;
      argv : int array;
    }
      (** [argv]/callee params pack [(reg lsl 1) lor is_f64]; [expect]:
          0 = no destination, 1 = int, 2 = float, 3 = always bad-return.
          [fid] is the callee's interned slot ([fslot fn]): per-call
          resolution indexes the run's decoded-image cache directly
          instead of hashing the name *)
  | PJmp of jm
  | PBr of br
  | PRet0
  | PRetI of { r : int }
  | PRetF of { r : int }
  (* Fused superinstructions (see [fuse_code]). Each constructor holds
     the decoded fields of the adjacent pair/triple it replaces; [c2]
     ([c3]) is the second (third) constituent's static cost, captured
     from the decoder's cost table, so the fused handlers tick, check
     fuel and charge per constituent exactly as the plain opcodes do.

     The [w*] flags are liveness facts computed at fuse time: [wdst]
     (resp. [wd1], [wd2], [wsr]) is false when the intermediate register
     written by that constituent is dead after the group — overwritten
     within it, or not live out of the block — in which case the handler
     skips the write and forwards the value locally. Registers are not
     observable in a precode outcome (no trace/watch here; traps carry no
     register state), so eliding a dead intermediate write is invisible. *)
  | PCmpBr of {
      dst : int;
      cond : cond;
      w64 : bool;
      l : int;
      r : int;
      wdst : bool;
      c2 : int;
      b : br;
    }
  | PCmpConstBr of {
      dst : int;
      cond : cond;
      w64 : bool;
      l : int;
      r : int;
      wdst : bool;
      d2 : int;
      v2 : int64;
      wd2 : bool;
      c2 : int;
      c3 : int;
      t1 : bool;  (** branch taken when the compare holds *)
      t0 : bool;  (** branch taken when it does not *)
      b : br;
    }
      (** only fused when both branch operands are produced inside the
          group ([dst]/[d2]), so the outcome is a fuse-time function of
          the compare bit: [t1]/[t0] *)
  | PConstBr of { d1 : int; v : int64; cvi : int; wd1 : bool; c2 : int; b : br }
      (** [cvi] = [sx32 v], the constant's native-int 32-bit image *)
  | PLoadBr of { ld : ald; wdst : bool; c2 : int; b : br }
  | PMovJmp of mvj
  | PStoreJmp of { s : ast; c2 : int; j : jm }
      (** loop-tail store: no data-dependency condition, the fused pair
          only saves the dispatch between store and jump *)
  | PConstJmp of { dst : int; v : int64; wd1 : bool; c2 : int; j : jm }
  | PSextLoad of { sr : int; wsr : bool; c2 : int; ld : ald }
  | PLoadSext of { ld : ald; c2 : int; xr : int; sh : int }
      (** [sh = -1]: 32-bit re-extension (counts [sext32]); otherwise the
          [SextSub] shift amount (counts [sext_sub]) *)
  | PZextLoad of { zr : int; mask : int64; wzr : bool; c2 : int; ld : ald }
      (** [Zext] + [ArrLoad] indexed by the just-zeroed register: after
          the mask the full register equals its low-32 image whenever the
          signed image is non-negative, so the wild-access check can
          never fire and the bounds test alone suffices *)
  | PLoadZext of { ld : ald; c2 : int; xr : int; mask : int64 }
      (** [ArrLoad] + [Zext] truncating the loaded value
          ([xr = ld.ldst]); [mask = 0xFFFF_FFFF] counts [zext32],
          narrower masks count [zext_sub] *)
  | PConstBin of cbin
  | PAddStore of {
      dst : int;
      l : int;
      r : int;
      ext : bool;
      wdst : bool;
      c2 : int;
      s : ast;
    }
  | PLoadLoad of { l1 : ald; c2 : int; l2 : ald }
  | PLoadStore of { ld : ald; c2 : int; s : ast }
  | PStoreStore of { s1 : ast; c2 : int; s2 : ast }
  (* Chained superinstructions: a second fusion pass merges a fused
     group with the group (or terminator) that follows it. The embedded
     payloads keep the write-elision flags computed for their original
     positions — a skipped write is dead downstream, so the chained tail
     never reads it; [hb]/[hm]/[cb] is the second group's head cost. *)
  | PBinBin of bb
  | PBinBr of { a : cbin; xw : bool; cb : int; sbl : int; sbr : int; b : br }
  | PBinMovJmp of { a : cbin; xw : bool; hm : int; smv : int; m : mvj }
  | PStoreMovJmp of { s : ast; hm : int; m : mvj }
  (* Block-shaped superinstructions: a chained group covering a whole
     hot basic block (Numeric Sort's sift loop), built by iterating the
     chain pass to a fixpoint. Every register read of a value produced
     earlier in the group is forwarded through a local (the [s*]/[z*]
     source codes, resolved at fuse time), so the write flags can be
     computed against liveness at the *end* of the group: a dead
     intermediate never touches the register file at all. The groups
     guarantee (fuse-time guards) that their written registers are
     pairwise distinct, so a float-typed cell at run time — where the
     loaded local keeps the stale integer register, as the structural
     engine would — cannot alias a forwarded integer value. *)
  | PMovBr of mvb
  | PBinBinBr of { bb : bb; cb : int; sbl : int; sbr : int; b : br }
  | PBinBinMovBr of { bb : bb; hm : int; smv : int; m : mvb; sbl : int; sbr : int }
  | PLoadSxLoad of {
      l1 : ald;
      w1 : bool;
      cs : int;  (** the Sext32 constituent's cost *)
      sr : int;
      wsr : bool;
      f1 : bool;  (** the sext reads the first load's value *)
      cl : int;  (** the second load's cost *)
      l2 : ald;  (** [l2.lidx = sr]: indexed by the just-extended value *)
    }
  | PLoadSxLoadBr of {
      l1 : ald;
      w1 : bool;
      cs : int;
      sr : int;
      wsr : bool;
      f1 : bool;
      cl : int;
      l2 : ald;
      w2 : bool;
      cb : int;
      sbl : int;  (** branch sources: 0 reg file, 1 load1, 2 sext, 3 load2 *)
      sbr : int;
      b : br;
    }
  | PSxLoadBin of {
      sr : int;
      wsr : bool;
      cl : int;
      ld : ald;  (** [ld.lidx = sr] *)
      w1 : bool;
      hb : int;
      a : cbin;
      s2l : int;  (** binop sources: 0 reg file, 1 load, 2 sext, 4 const *)
      s2r : int;
      xw : bool;
    }
  | PSxLoadBinLoadBr of {
      sr : int;
      wsr : bool;
      cl : int;
      ld : ald;
      w1 : bool;
      hb : int;
      a : cbin;
      s2l : int;
      s2r : int;
      xw : bool;
      hl : int;
      ld2 : ald;
      w2 : bool;
      si : int;  (** load2's index source: 0 reg file, 1 load1, 2 sext, 3 bin *)
      cb : int;
      sbl : int;  (** branch: 0 reg file, 1 load1, 2 sext, 3 bin, 5 load2 *)
      sbr : int;
      b : br;
    }
  | PLoad2Store2 of {
      l1 : ald;
      w1 : bool;
      c2 : int;
      l2 : ald;
      w2 : bool;
      c3 : int;
      s1 : ast;
      z1 : int;  (** store source: 0 reg file, 1 load1, 2 load2 *)
      zr1 : bool;  (** same element kind: store the raw cell value back *)
      c4 : int;
      s2 : ast;
      z2 : int;
      zr2 : bool;
    }
  | PSwapJmp of {
      l1 : ald;
      w1 : bool;
      c2 : int;
      l2 : ald;
      w2 : bool;
      c3 : int;
      s1 : ast;
      z1 : int;
      zr1 : bool;
      c4 : int;
      s2 : ast;
      z2 : int;
      zr2 : bool;
      hm : int;
      smv : int;  (** mov source: 0 reg file, 1 load1, 2 load2 *)
      m : mvj;
    }
  | PBinSext of { a : cbin; cs : int; xw : bool }
      (** const+binop whose result register is immediately re-extended
          ([Sext32 a.dst]): the pre-extension write is overwritten in the
          same slot, so only the extended value ([xw]) can reach the
          register file *)
  | PBinSextMovJmp of {
      a : cbin;
      cs : int;
      xw : bool;
      hm : int;
      smv : int;  (** mov source: 0 reg file, 1 sext result, 3 const *)
      m : mvj;
    }
  | PSextMovJmp of { xr : int; xw : bool; hm : int; smv : int; m : mvj }
  | PGStoreGLoad of {
      sslot : int;
      src : int;
      c2 : int;
      ldst : int;
      lslot : int;
      lsign : bool;
      lext : bool;
      wl : bool;
    }  (** 32-bit global store followed by a 32-bit global load (the
           seed-update idiom in Numeric Sort's PRNG); executed verbatim *)
  | PGLoadBinBin of {
      gdst : int;
      gslot : int;
      gsign : bool;
      gext : bool;
      wg : bool;
      hb : int;  (** the first const's head cost, charged by the handler *)
      sal : int;  (** bin1 operand sources: 0 reg file, 6 loaded global *)
      sar : int;
      bb : bb;  (** [bb]'s 0-source codes may be upgraded to 6 as well *)
    }
  | PBinBinRet of { bb : bb; cr : int; r : int; sr : int }
      (** [sr]: return-value source — 0 reg file, 1/2 bin results,
          3/4 constants *)

type pfunc = {
  fname : string;
  nregs : int;
  params : int array;  (** packed [(reg lsl 1) lor is_f64], in order *)
  code : pi array;  (** blocks laid out in bid order; empty for 0 blocks *)
  costs : int array;  (** static cycle weight per slot; 0 for [PNewArr] *)
  fstats : (string * int) list;  (** fused groups per rule, rule order *)
  src : Cfg.func;
}

let fusion_stats p = p.fstats
let fused_total p = List.fold_left (fun a (_, n) -> a + n) 0 p.fstats

(* ------------------------------------------------------------------ *)
(* Opcode ids: the dispatch-pair histogram's key space                  *)
(* ------------------------------------------------------------------ *)

(* Small dense ids for every decoded opcode, fused superinstructions
   included. The histogram ([Profile.pairs]) is a flat [nops * nops]
   array indexed by [first * nops + second]; [op_name] is the reporting
   side. Keep the three in sync when adding an opcode. *)

let op_id = function
  | PNop -> 0
  | PConstI _ -> 1
  | PConstF _ -> 2
  | PMovI _ -> 3
  | PMovF _ -> 4
  | PNegI _ -> 5
  | PNotI _ -> 6
  | PAdd _ -> 7
  | PSub _ -> 8
  | PMul _ -> 9
  | PAnd _ -> 10
  | POr _ -> 11
  | PXor _ -> 12
  | PShl _ -> 13
  | PAShr _ -> 14
  | PLShr _ -> 15
  | PDiv _ -> 16
  | PRem _ -> 17
  | PCmp _ -> 18
  | PSext32 _ -> 19
  | PSextSub _ -> 20
  | PZext _ -> 21
  | PFAdd _ -> 22
  | PFSub _ -> 23
  | PFMul _ -> 24
  | PFDiv _ -> 25
  | PFNeg _ -> 26
  | PFCmp _ -> 27
  | PItoF _ -> 28
  | PD2I _ -> 29
  | PD2L _ -> 30
  | PNewArr _ -> 31
  | PArrLoad _ -> 32
  | PArrStore _ -> 33
  | PArrLen _ -> 34
  | PGLoadF _ -> 35
  | PGLoadI32 _ -> 36
  | PGLoadI _ -> 37
  | PGStoreF _ -> 38
  | PGStoreI32 _ -> 39
  | PGStoreI _ -> 40
  | PPrintI _ -> 41
  | PPrintF _ -> 42
  | PCheckI _ -> 43
  | PCheckF _ -> 44
  | PTrapOp _ -> 45
  | PCallUser _ -> 46
  | PJmp _ -> 47
  | PBr _ -> 48
  | PRet0 -> 49
  | PRetI _ -> 50
  | PRetF _ -> 51
  | PCmpBr _ -> 52
  | PCmpConstBr _ -> 53
  | PConstBr _ -> 54
  | PLoadBr _ -> 55
  | PMovJmp _ -> 56
  | PSextLoad _ -> 57
  | PLoadSext _ -> 58
  | PConstBin _ -> 59
  | PAddStore _ -> 60
  | PLoadLoad _ -> 61
  | PLoadStore _ -> 62
  | PStoreStore _ -> 63
  | PBinBin _ -> 64
  | PBinBr _ -> 65
  | PBinMovJmp _ -> 66
  | PStoreMovJmp _ -> 67
  | PMovBr _ -> 68
  | PBinBinBr _ -> 69
  | PBinBinMovBr _ -> 70
  | PLoadSxLoad _ -> 71
  | PLoadSxLoadBr _ -> 72
  | PSxLoadBin _ -> 73
  | PSxLoadBinLoadBr _ -> 74
  | PLoad2Store2 _ -> 75
  | PSwapJmp _ -> 76
  | PStoreJmp _ -> 77
  | PConstJmp _ -> 78
  | PBinSext _ -> 79
  | PBinSextMovJmp _ -> 80
  | PSextMovJmp _ -> 81
  | PGStoreGLoad _ -> 82
  | PGLoadBinBin _ -> 83
  | PBinBinRet _ -> 84
  | PZextLoad _ -> 85
  | PLoadZext _ -> 86

let op_names =
  [|
    "Nop"; "ConstI"; "ConstF"; "MovI"; "MovF"; "NegI"; "NotI"; "Add"; "Sub";
    "Mul"; "And"; "Or"; "Xor"; "Shl"; "AShr"; "LShr"; "Div"; "Rem"; "Cmp";
    "Sext32"; "SextSub"; "Zext"; "FAdd"; "FSub"; "FMul"; "FDiv"; "FNeg";
    "FCmp"; "ItoF"; "D2I"; "D2L"; "NewArr"; "ArrLoad"; "ArrStore"; "ArrLen";
    "GLoadF"; "GLoadI32"; "GLoadI"; "GStoreF"; "GStoreI32"; "GStoreI";
    "PrintI"; "PrintF"; "CheckI"; "CheckF"; "TrapOp"; "CallUser"; "Jmp";
    "Br"; "Ret0"; "RetI"; "RetF"; "CmpBr"; "CmpConstBr"; "ConstBr"; "LoadBr";
    "MovJmp"; "SextLoad"; "LoadSext"; "ConstBin"; "AddStore"; "LoadLoad";
    "LoadStore"; "StoreStore"; "BinBin"; "BinBr"; "BinMovJmp"; "StoreMovJmp";
    "MovBr"; "BinBinBr"; "BinBinMovBr"; "LoadSxLoad"; "LoadSxLoadBr";
    "SxLoadBin"; "SxLoadBinLoadBr"; "Load2Store2"; "SwapJmp"; "StoreJmp";
    "ConstJmp"; "BinSext"; "BinSextMovJmp"; "SextMovJmp"; "GStoreGLoad";
    "GLoadBinBin"; "BinBinRet"; "ZextLoad"; "LoadZext";
  |]

let nops = Array.length op_names
let op_name id = if id >= 0 && id < nops then op_names.(id) else "?"

(** Enable dispatch-pair collection on [prof] with this engine's opcode
    id space. *)
let enable_dispatch prof = Profile.enable_pairs prof ~nops

(** The histogram as [((first_name, second_name), count)], count
    descending. Pairs are only recorded for straight-line adjacency
    (control transfers reset the chain), so every reported pair is a
    fusion candidate. *)
let dispatch_counts (prof : Profile.t) : ((string * string) * int) list =
  List.map (fun ((a, b), c) -> ((op_name a, op_name b), c)) (Profile.pair_counts prof)

(** How many flat slots a decoded op covers: 1 for plain ops, the
    constituent count for fused superinstructions (their handlers step
    [pc] by this much). *)
let group_width = function
  | PCmpConstBr _ | PBinBr _ | PStoreMovJmp _ | PLoadSxLoad _ | PBinSext _
  | PSextMovJmp _ ->
      3
  | PCmpBr _ | PConstBr _ | PLoadBr _ | PMovJmp _ | PMovBr _ | PSextLoad _
  | PLoadSext _ | PZextLoad _ | PLoadZext _ | PConstBin _ | PAddStore _
  | PLoadLoad _ | PLoadStore _ | PStoreStore _ | PStoreJmp _ | PConstJmp _
  | PGStoreGLoad _ ->
      2
  | PBinBin _ | PBinMovJmp _ | PLoadSxLoadBr _ | PSxLoadBin _ | PLoad2Store2 _
    ->
      4
  | PBinBinBr _ | PBinSextMovJmp _ | PGLoadBinBin _ | PBinBinRet _ -> 5
  | PBinBinMovBr _ | PSxLoadBinLoadBr _ | PSwapJmp _ -> 6
  | _ -> 1

(* ------------------------------------------------------------------ *)
(* Superinstruction fusion                                             *)
(* ------------------------------------------------------------------ *)

(* Peephole pass over the freshly laid-out [code]/[costs] arrays: rewrite
   hot adjacent pairs/triples into fused opcodes. The rewrite is
   in-place and head-anchored — slot [i] becomes the fused opcode and
   the constituent slots [i+1 ..] keep their original contents, which
   simply become unreachable (the fused handler jumps past them), so
   every flat jump offset in the function stays valid. A group never
   includes a slot that starts a basic block: block starts are the only
   possible branch targets, so a target can land on a fused head (fine —
   that is where the group's first constituent lives) but never in the
   middle of a group. Constituent costs are taken from the [costs] array
   the decoder just filled from the shared {!Cost} table — the fused
   handlers charge the identical weights in the identical order, so the
   [cycles] counter cannot drift from the structural engine's.

   [la.(k)] is the set of registers live {e after} flat slot [k]
   (terminator slots carry the block's live-out); it decides the [w*]
   dead-intermediate-write flags on the fused records. *)
(* An integer binop's [cbin] encoding ([k], width flag, operands), for
   the const-arith rule; [None] for anything that is not a two-operand
   integer binop. *)
let bin_fields = function
  | PAdd { dst; l; r; ext } -> Some (0, false, dst, l, r, ext)
  | PSub { dst; l; r; ext } -> Some (1, false, dst, l, r, ext)
  | PMul { dst; l; r; ext } -> Some (2, false, dst, l, r, ext)
  | PAnd { dst; l; r; ext } -> Some (3, false, dst, l, r, ext)
  | POr { dst; l; r; ext } -> Some (4, false, dst, l, r, ext)
  | PXor { dst; l; r; ext } -> Some (5, false, dst, l, r, ext)
  | PShl { dst; l; r; w64; ext } -> Some (6, w64, dst, l, r, ext)
  | PAShr { dst; l; r; w64; ext } -> Some (7, w64, dst, l, r, ext)
  | PLShr { dst; l; r; w64; ext } -> Some (8, w64, dst, l, r, ext)
  | PDiv { dst; l; r; w64; ext } -> Some (9, w64, dst, l, r, ext)
  | PRem { dst; l; r; w64; ext } -> Some (10, w64, dst, l, r, ext)
  | _ -> None

(* [bin_fields op] when the binop reads the just-written constant [d1]. *)
let cbin_candidate d1 op =
  match bin_fields op with
  | Some (_, _, _, l, r, _) as s when l = d1 || r = d1 -> s
  | _ -> None

let fuse_code ~(fuse : Fuse.selection) ~(is_start : bool array)
    ~(la : Bitset.t array) (code : pi array) (costs : int array) :
    (string * int) list =
  let n = Array.length code in
  let counts = Hashtbl.create 8 in
  let hit rule =
    Hashtbl.replace counts rule
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts rule))
  in
  let on = Fuse.enables fuse in
  (* a slot may join a group only if it exists and no branch target lands
     on it; the group head itself may be a target (execution starts at
     the first constituent either way) *)
  let free k = k < n && not is_start.(k) in
  let i = ref 0 in
  while !i < n do
    let i1 = !i + 1 and i2 = !i + 2 in
    let w =
      if not (free i1) then 1
      else
        match (code.(!i), code.(i1)) with
        | PCmp { dst; cond; w64; l; r }, PConstI { dst = d2; v = v2 }
          when on "cmp-br" && free i2 -> (
            match code.(i2) with
            | PBr b
              when (b.bl = dst || b.bl = d2) && (b.brx = dst || b.brx = d2) ->
                (* both branch operands are produced inside the group, so
                   the taken edge is a fuse-time function of the compare
                   bit (the constant shadows the compare when [d2 = dst]) *)
                let taken bi =
                  let v_of reg =
                    if reg = d2 then v2 else if bi then 1L else 0L
                  in
                  let lv = v_of b.bl and rv = v_of b.brx in
                  if b.bw64 then holds b.bcond (Int64.compare lv rv)
                  else iholds b.bcond (sx32 lv) (sx32 rv)
                in
                code.(!i) <-
                  PCmpConstBr
                    {
                      dst;
                      cond;
                      w64;
                      l;
                      r;
                      wdst = dst <> d2 && Bitset.mem la.(i2) dst;
                      d2;
                      v2;
                      wd2 = Bitset.mem la.(i2) d2;
                      c2 = costs.(i1);
                      c3 = costs.(i2);
                      t1 = taken true;
                      t0 = taken false;
                      b;
                    };
                hit "cmp-br";
                3
            | _ -> 1)
        | PCmp { dst; cond; w64; l; r }, PBr b
          when on "cmp-br" && (b.bl = dst || b.brx = dst) ->
            code.(!i) <-
              PCmpBr
                {
                  dst;
                  cond;
                  w64;
                  l;
                  r;
                  wdst = Bitset.mem la.(i1) dst;
                  c2 = costs.(i1);
                  b;
                };
            hit "cmp-br";
            2
        | PConstI { dst = d1; v }, PBr b
          when on "const-br" && (b.bl = d1 || b.brx = d1) ->
            code.(!i) <-
              PConstBr
                {
                  d1;
                  v;
                  cvi = sx32 v;
                  wd1 = Bitset.mem la.(i1) d1;
                  c2 = costs.(i1);
                  b;
                };
            hit "const-br";
            2
        | PConstI { dst = d1; v }, op2
          when on "const-arith" && cbin_candidate d1 op2 <> None -> (
            match cbin_candidate d1 op2 with
            | Some (k, kw, dst, l, r, ext) ->
                code.(!i) <-
                  PConstBin
                    {
                      d1;
                      v;
                      wd1 = d1 <> dst && Bitset.mem la.(i1) d1;
                      k;
                      kw;
                      dst;
                      l;
                      r;
                      ext;
                      c2 = costs.(i1);
                    };
                hit "const-arith";
                2
            | None -> assert false)
        | PArrLoad ld, PBr b
          when on "load-br" && (b.bl = ld.ldst || b.brx = ld.ldst) ->
            code.(!i) <-
              PLoadBr
                { ld; wdst = Bitset.mem la.(i1) ld.ldst; c2 = costs.(i1); b };
            hit "load-br";
            2
        | PArrLoad ld, PSext32 { r }
          when on "load-sext" && r = ld.ldst ->
            code.(!i) <- PLoadSext { ld; c2 = costs.(i1); xr = r; sh = -1 };
            hit "load-sext";
            2
        | PArrLoad ld, PSextSub { r; sh }
          when on "load-sext" && r = ld.ldst ->
            code.(!i) <- PLoadSext { ld; c2 = costs.(i1); xr = r; sh };
            hit "load-sext";
            2
        | PArrLoad ld, PZext { r; mask }
          when on "load-zext" && r = ld.ldst ->
            code.(!i) <- PLoadZext { ld; c2 = costs.(i1); xr = r; mask };
            hit "load-zext";
            2
        | PMovI { dst; src; ext }, PJmp j when on "mov-jmp" ->
            code.(!i) <-
              PMovJmp
                {
                  mdst = dst;
                  msrc = src;
                  mext = ext;
                  mw = Bitset.mem la.(i1) dst;
                  mc2 = costs.(i1);
                  mj = j;
                };
            hit "mov-jmp";
            2
        | PMovI { dst; src; ext }, PBr b when on "mov-br" ->
            (* [la.(!i)] (live after the mov) includes the branch's own
               reads, so a mov the branch observes is always written *)
            code.(!i) <-
              PMovBr
                {
                  vdst = dst;
                  vsrc = src;
                  vext = ext;
                  vw = Bitset.mem la.(!i) dst;
                  vc2 = costs.(i1);
                  vb = b;
                };
            hit "mov-br";
            2
        | PArrStore s, PJmp j when on "store-jmp" ->
            code.(!i) <- PStoreJmp { s; c2 = costs.(i1); j };
            hit "store-jmp";
            2
        | PConstI { dst; v }, PJmp j when on "const-jmp" ->
            code.(!i) <-
              PConstJmp
                { dst; v; wd1 = Bitset.mem la.(i1) dst; c2 = costs.(i1); j };
            hit "const-jmp";
            2
        | PGStoreI32 { slot = sslot; src }, PGLoadI32 { dst; slot; sign; ext }
          when on "gstore-gload" ->
            code.(!i) <-
              PGStoreGLoad
                {
                  sslot;
                  src;
                  c2 = costs.(i1);
                  ldst = dst;
                  lslot = slot;
                  lsign = sign;
                  lext = ext;
                  wl = Bitset.mem la.(i1) dst;
                };
            hit "gstore-gload";
            2
        | PSext32 { r }, PArrLoad ld
          when on "sext-load" && ld.lidx = r && ld.larr <> r ->
            (* [larr <> r]: the handler substitutes the extended index
               locally and must not have the array handle alias it *)
            code.(!i) <-
              PSextLoad
                {
                  sr = r;
                  wsr = r <> ld.ldst && Bitset.mem la.(i1) r;
                  c2 = costs.(i1);
                  ld;
                };
            hit "sext-load";
            2
        | PZext { r; mask }, PArrLoad ld
          when on "zext-load" && ld.lidx = r && ld.larr <> r ->
            (* same aliasing guard as [sext-load]: the handler substitutes
               the masked index locally *)
            code.(!i) <-
              PZextLoad
                {
                  zr = r;
                  mask;
                  wzr = r <> ld.ldst && Bitset.mem la.(i1) r;
                  c2 = costs.(i1);
                  ld;
                };
            hit "zext-load";
            2
        | PAdd { dst; l; r; ext }, PArrStore s
          when on "add-store" && (s.ssrc = dst || s.sidx = dst) ->
            code.(!i) <-
              PAddStore
                {
                  dst;
                  l;
                  r;
                  ext;
                  wdst = Bitset.mem la.(i1) dst;
                  c2 = costs.(i1);
                  s;
                };
            hit "add-store";
            2
        | PArrLoad l1, PArrLoad l2 when on "load-load" ->
            code.(!i) <- PLoadLoad { l1; c2 = costs.(i1); l2 };
            hit "load-load";
            2
        | PArrLoad ld, PArrStore s when on "load-store" ->
            code.(!i) <- PLoadStore { ld; c2 = costs.(i1); s };
            hit "load-store";
            2
        | PArrStore s1, PArrStore s2 when on "store-store" ->
            code.(!i) <- PStoreStore { s1; c2 = costs.(i1); s2 };
            hit "store-store";
            2
        | _ -> 1
    in
    i := !i + w
  done;
  (* Second pass: chain a fused group with the group (or lone
     terminator) that follows it, iterated to a fixpoint so a whole hot
     basic block can collapse into one superinstruction. In-place and
     head-anchored like the first pass; the second group's head slot
     must not be a branch target (its shadowed op would still execute
     correctly on entry, but fusion never crosses a target by contract).
     The embedded payloads carry their own internal costs; only the
     second head's cost needs capturing here.

     Chaining re-resolves forwarding: every in-group read of an
     in-group-written register gets a fuse-time source code pointing at
     the producing constituent's local, and the write-elision flags are
     recomputed against liveness at the *end* of the merged group
     ([la.(e)]) minus registers some later constituent overwrites — so
     a temporary that only feeds the next instruction never touches the
     register file. *)
  if on "chain" then begin
    let live e q = Bitset.mem la.(e) q in
    (* chained const-binop pair: source codes 0 reg file / 1 bin1 /
       2 bin2 / 3 const1 / 4 const2 (5 = mov value, in the longer
       chains); [ovr] lists registers a tail constituent overwrites *)
    let mk_bb a hb b2 e ovr =
      let later q = List.mem q ovr in
      let src q =
        if q = b2.d1 then 4
        else if q = a.dst then 1
        else if q = a.d1 then 3
        else 0
      in
      {
        a =
          {
            a with
            wd1 =
              a.d1 <> a.dst && a.d1 <> b2.d1 && a.d1 <> b2.dst
              && (not (later a.d1))
              && live e a.d1;
          };
        hb;
        b2 =
          {
            b2 with
            wd1 = b2.d1 <> b2.dst && (not (later b2.d1)) && live e b2.d1;
          };
        s2l = src b2.l;
        s2r = src b2.r;
        xw1 =
          a.dst <> b2.d1 && a.dst <> b2.dst
          && (not (later a.dst))
          && live e a.dst;
        xw2 = (not (later b2.dst)) && live e b2.dst;
      }
    in
    let again = ref true in
    while !again do
      again := false;
      let i = ref 0 in
      while !i < n do
        let w1 = group_width code.(!i) in
        let ih2 = !i + w1 in
        let w =
          if not (free ih2) then w1
          else
            match (code.(!i), code.(ih2)) with
            | PConstBin a, PConstBin b2 ->
                code.(!i) <- PBinBin (mk_bb a costs.(ih2) b2 (ih2 + 1) []);
                hit "chain";
                4
            | PConstBin a, PMovJmp m ->
                let e = ih2 + 1 in
                code.(!i) <-
                  PBinMovJmp
                    {
                      a =
                        {
                          a with
                          wd1 =
                            a.d1 <> a.dst && a.d1 <> m.mdst && live e a.d1;
                        };
                      xw = a.dst <> m.mdst && live e a.dst;
                      hm = costs.(ih2);
                      smv =
                        (if m.msrc = a.dst then 1
                         else if m.msrc = a.d1 then 3
                         else 0);
                      m = { m with mw = live e m.mdst };
                    };
                hit "chain";
                4
            | PConstBin a, PBr b ->
                let e = ih2 in
                let sb q =
                  if q = a.dst then 1 else if q = a.d1 then 3 else 0
                in
                code.(!i) <-
                  PBinBr
                    {
                      a = { a with wd1 = a.d1 <> a.dst && live e a.d1 };
                      xw = live e a.dst;
                      cb = costs.(ih2);
                      sbl = sb b.bl;
                      sbr = sb b.brx;
                      b;
                    };
                hit "chain";
                3
            | PArrStore s, PMovJmp m ->
                code.(!i) <- PStoreMovJmp { s; hm = costs.(ih2); m };
                hit "chain";
                3
            | PBinBin bb0, PBr b ->
                let e = ih2 in
                let a = bb0.a and b2 = bb0.b2 in
                let sb q =
                  if q = b2.dst then 2
                  else if q = b2.d1 then 4
                  else if q = a.dst then 1
                  else if q = a.d1 then 3
                  else 0
                in
                code.(!i) <-
                  PBinBinBr
                    {
                      bb = mk_bb a bb0.hb b2 e [];
                      cb = costs.(ih2);
                      sbl = sb b.bl;
                      sbr = sb b.brx;
                      b;
                    };
                hit "chain";
                5
            | PBinBin bb0, PMovBr m ->
                let e = ih2 + 1 in
                let a = bb0.a and b2 = bb0.b2 in
                let smv_of q =
                  if q = b2.dst then 2
                  else if q = b2.d1 then 4
                  else if q = a.dst then 1
                  else if q = a.d1 then 3
                  else 0
                in
                let sb q = if q = m.vdst then 5 else smv_of q in
                code.(!i) <-
                  PBinBinMovBr
                    {
                      bb = mk_bb a bb0.hb b2 e [ m.vdst ];
                      hm = costs.(ih2);
                      smv = smv_of m.vsrc;
                      m = { m with vw = live e m.vdst };
                      sbl = sb m.vb.bl;
                      sbr = sb m.vb.brx;
                    };
                hit "chain";
                6
            | PArrLoad l1, PSextLoad sx
              when sx.sr <> sx.ld.ldst && l1.ldst <> sx.ld.ldst
                   && sx.ld.larr <> l1.ldst ->
                let e = ih2 + 1 in
                code.(!i) <-
                  PLoadSxLoad
                    {
                      l1;
                      w1 = l1.ldst <> sx.sr && live e l1.ldst;
                      cs = costs.(ih2);
                      sr = sx.sr;
                      wsr = live e sx.sr;
                      f1 = sx.sr = l1.ldst;
                      cl = sx.c2;
                      l2 = sx.ld;
                    };
                hit "chain";
                3
            | PLoadSxLoad z, PBr b when z.l1.ldst <> z.l2.ldst ->
                let e = ih2 in
                let sb q =
                  if q = z.l2.ldst then 3
                  else if q = z.sr then 2
                  else if q = z.l1.ldst then 1
                  else 0
                in
                code.(!i) <-
                  PLoadSxLoadBr
                    {
                      l1 = z.l1;
                      w1 = z.l1.ldst <> z.sr && live e z.l1.ldst;
                      cs = z.cs;
                      sr = z.sr;
                      wsr = live e z.sr;
                      f1 = z.f1;
                      cl = z.cl;
                      l2 = z.l2;
                      w2 = live e z.l2.ldst;
                      cb = costs.(ih2);
                      sbl = sb b.bl;
                      sbr = sb b.brx;
                      b;
                    };
                hit "chain";
                4
            | PSextLoad sx, PConstBin cb when sx.sr <> sx.ld.ldst ->
                let e = ih2 + 1 in
                let src q =
                  if q = cb.d1 then 4
                  else if q = sx.ld.ldst then 1
                  else if q = sx.sr then 2
                  else 0
                in
                code.(!i) <-
                  PSxLoadBin
                    {
                      sr = sx.sr;
                      wsr =
                        sx.sr <> cb.d1 && sx.sr <> cb.dst && live e sx.sr;
                      cl = sx.c2;
                      ld = sx.ld;
                      w1 =
                        sx.ld.ldst <> cb.d1 && sx.ld.ldst <> cb.dst
                        && live e sx.ld.ldst;
                      hb = costs.(ih2);
                      a = { cb with wd1 = cb.d1 <> cb.dst && live e cb.d1 };
                      s2l = src cb.l;
                      s2r = src cb.r;
                      xw = live e cb.dst;
                    };
                hit "chain";
                4
            | PSxLoadBin y, PLoadBr lb
              when lb.ld.ldst <> y.sr && lb.ld.ldst <> y.ld.ldst
                   && lb.ld.ldst <> y.a.d1 && lb.ld.ldst <> y.a.dst
                   && lb.ld.larr <> y.sr && lb.ld.larr <> y.ld.ldst
                   && lb.ld.larr <> y.a.d1 && lb.ld.larr <> y.a.dst ->
                let e = ih2 + 1 in
                let src q =
                  if q = y.a.dst then 3
                  else if q = y.a.d1 then 4
                  else if q = y.ld.ldst then 1
                  else if q = y.sr then 2
                  else 0
                in
                let sb q = if q = lb.ld.ldst then 5 else src q in
                code.(!i) <-
                  PSxLoadBinLoadBr
                    {
                      sr = y.sr;
                      wsr =
                        y.sr <> y.a.d1 && y.sr <> y.a.dst && live e y.sr;
                      cl = y.cl;
                      ld = y.ld;
                      w1 =
                        y.ld.ldst <> y.a.d1 && y.ld.ldst <> y.a.dst
                        && live e y.ld.ldst;
                      hb = y.hb;
                      a = { y.a with wd1 = y.a.d1 <> y.a.dst && live e y.a.d1 };
                      s2l = y.s2l;
                      s2r = y.s2r;
                      xw = live e y.a.dst;
                      hl = costs.(ih2);
                      ld2 = lb.ld;
                      w2 = live e lb.ld.ldst;
                      si = src lb.ld.lidx;
                      cb = lb.c2;
                      sbl = sb lb.b.bl;
                      sbr = sb lb.b.brx;
                      b = lb.b;
                    };
                hit "chain";
                6
            | PLoadLoad ll, PStoreStore ss when ll.l1.ldst <> ll.l2.ldst ->
                let e = ih2 + 1 in
                let d1 = ll.l1.ldst and d2 = ll.l2.ldst in
                let unf1 =
                  d1 = ll.l2.larr || d1 = ll.l2.lidx || d1 = ss.s1.sarr
                  || d1 = ss.s1.sidx || d1 = ss.s2.sarr || d1 = ss.s2.sidx
                in
                let unf2 =
                  d2 = ss.s1.sarr || d2 = ss.s1.sidx || d2 = ss.s2.sarr
                  || d2 = ss.s2.sidx
                in
                let zc q = if q = d2 then 2 else if q = d1 then 1 else 0 in
                let zr (s : ast) z =
                  (z = 1 && s.selem = ll.l1.lelem)
                  || (z = 2 && s.selem = ll.l2.lelem)
                in
                let z1 = zc ss.s1.ssrc and z2 = zc ss.s2.ssrc in
                code.(!i) <-
                  PLoad2Store2
                    {
                      l1 = ll.l1;
                      w1 = unf1 || live e d1;
                      c2 = ll.c2;
                      l2 = ll.l2;
                      w2 = unf2 || live e d2;
                      c3 = costs.(ih2);
                      s1 = ss.s1;
                      z1;
                      zr1 = zr ss.s1 z1;
                      c4 = ss.c2;
                      s2 = ss.s2;
                      z2;
                      zr2 = zr ss.s2 z2;
                    };
                hit "chain";
                4
            | PLoad2Store2 t, PMovJmp m ->
                let e = ih2 + 1 in
                let d1 = t.l1.ldst and d2 = t.l2.ldst in
                let unf1 =
                  d1 = t.l2.larr || d1 = t.l2.lidx || d1 = t.s1.sarr
                  || d1 = t.s1.sidx || d1 = t.s2.sarr || d1 = t.s2.sidx
                in
                let unf2 =
                  d2 = t.s1.sarr || d2 = t.s1.sidx || d2 = t.s2.sarr
                  || d2 = t.s2.sidx
                in
                code.(!i) <-
                  PSwapJmp
                    {
                      l1 = t.l1;
                      w1 = unf1 || (d1 <> m.mdst && live e d1);
                      c2 = t.c2;
                      l2 = t.l2;
                      w2 = unf2 || (d2 <> m.mdst && live e d2);
                      c3 = t.c3;
                      s1 = t.s1;
                      z1 = t.z1;
                      zr1 = t.zr1;
                      c4 = t.c4;
                      s2 = t.s2;
                      z2 = t.z2;
                      zr2 = t.zr2;
                      hm = costs.(ih2);
                      smv =
                        (if m.msrc = d2 then 2
                         else if m.msrc = d1 then 1
                         else 0);
                      m = { m with mw = live e m.mdst };
                    };
                hit "chain";
                6
            | PConstBin a, PSext32 { r } when r = a.dst ->
                code.(!i) <-
                  PBinSext
                    {
                      a = { a with wd1 = a.d1 <> a.dst && live ih2 a.d1 };
                      cs = costs.(ih2);
                      xw = live ih2 a.dst;
                    };
                hit "chain";
                3
            | PBinSext { a; cs; xw = _ }, PMovJmp m ->
                let e = ih2 + 1 in
                code.(!i) <-
                  PBinSextMovJmp
                    {
                      a =
                        {
                          a with
                          wd1 =
                            a.d1 <> a.dst && a.d1 <> m.mdst && live e a.d1;
                        };
                      cs;
                      xw = a.dst <> m.mdst && live e a.dst;
                      hm = costs.(ih2);
                      smv =
                        (if m.msrc = a.dst then 1
                         else if m.msrc = a.d1 then 3
                         else 0);
                      m = { m with mw = live e m.mdst };
                    };
                hit "chain";
                5
            | PSext32 { r }, PMovJmp m ->
                let e = ih2 + 1 in
                code.(!i) <-
                  PSextMovJmp
                    {
                      xr = r;
                      xw = r <> m.mdst && live e r;
                      hm = costs.(ih2);
                      smv = (if m.msrc = r then 1 else 0);
                      m = { m with mw = live e m.mdst };
                    };
                hit "chain";
                3
            | PGLoadI32 { dst = gdst; slot; sign; ext }, PBinBin bb ->
                let e = ih2 + 3 in
                let a = bb.a and b2 = bb.b2 in
                let up c q = if c = 0 && q = gdst then 6 else c in
                code.(!i) <-
                  PGLoadBinBin
                    {
                      gdst;
                      gslot = slot;
                      gsign = sign;
                      gext = ext;
                      wg =
                        gdst <> a.d1 && gdst <> a.dst && gdst <> b2.d1
                        && gdst <> b2.dst && live e gdst;
                      hb = costs.(ih2);
                      sal = (if a.l = gdst then 6 else 0);
                      sar = (if a.r = gdst then 6 else 0);
                      bb = { bb with s2l = up bb.s2l b2.l; s2r = up bb.s2r b2.r };
                    };
                hit "chain";
                5
            | PBinBin bb0, PRetI { r } ->
                code.(!i) <-
                  PBinBinRet
                    {
                      bb = mk_bb bb0.a bb0.hb bb0.b2 ih2 [];
                      cr = costs.(ih2);
                      r;
                      sr =
                        (if r = bb0.b2.dst then 2
                         else if r = bb0.b2.d1 then 4
                         else if r = bb0.a.dst then 1
                         else if r = bb0.a.d1 then 3
                         else 0);
                    };
                hit "chain";
                5
            | _ -> w1
        in
        if w <> w1 then again := true;
        i := !i + w
      done
    done
  end;
  List.filter_map
    (fun rule ->
      match Hashtbl.find_opt counts rule with
      | Some c -> Some (rule, c)
      | None -> None)
    Fuse.rule_names

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

(* Global-variable symbol interning: append-only, process-wide,
   mutex-guarded. Only decode touches it (cold path); the execution
   state sizes its dense slot arrays from [gslot_count] and the hot
   global-access handlers index those directly. Slot numbers can vary
   with decode order across processes/domains — they are never
   observable in an outcome. *)
let gslot_mu = Mutex.create ()
let gslot_tbl : (string, int) Hashtbl.t = Hashtbl.create 32
let gslot_n = ref 0

let gslot sym =
  Mutex.lock gslot_mu;
  let s =
    match Hashtbl.find_opt gslot_tbl sym with
    | Some s -> s
    | None ->
        let s = !gslot_n in
        incr gslot_n;
        Hashtbl.add gslot_tbl sym s;
        s
  in
  Mutex.unlock gslot_mu;
  s

let gslot_count () =
  Mutex.lock gslot_mu;
  let n = !gslot_n in
  Mutex.unlock gslot_mu;
  n

(* Function names get the same treatment: [PCallUser] carries the
   callee's slot, and each run caches decoded images in a dense array
   indexed by it — call resolution is an array read, not a string hash,
   on the path of every user call. *)
let fslot_mu = Mutex.create ()
let fslot_tbl : (string, int) Hashtbl.t = Hashtbl.create 32
let fslot_n = ref 0

let fslot fn =
  Mutex.lock fslot_mu;
  let s =
    match Hashtbl.find_opt fslot_tbl fn with
    | Some s -> s
    | None ->
        let s = !fslot_n in
        incr fslot_n;
        Hashtbl.add fslot_tbl fn s;
        s
  in
  Mutex.unlock fslot_mu;
  s

let fslot_count () =
  Mutex.lock fslot_mu;
  let n = !fslot_n in
  Mutex.unlock fslot_mu;
  n

let pack_reg (r, ty) = (r lsl 1) lor (match ty with F64 -> 1 | _ -> 0)

let decode ?(fuse = Fuse.Off) ~(canonical : bool) (f : Cfg.func) : pfunc =
  let nregs = Cfg.num_regs f in
  (* the canonical machine re-extends I32 destinations ([Interp]'s
     [set_i]); out-of-range destinations keep [ext = false] so the
     register write itself raises, as the faithful structural engine
     does on malformed IR *)
  let ext dst = canonical && dst >= 0 && dst < nregs && Cfg.reg_ty f dst = I32 in
  let decode_op (op : Instr.op) : pi =
    match op with
    | Instr.Const { dst; ty; v } -> (
        match ty with
        | F64 -> PConstF { dst; v = Int64.float_of_bits v }
        | _ -> PConstI { dst; v = (if ext dst then Eval.sext32 v else v) })
    | Instr.FConst { dst; v } -> PConstF { dst; v }
    | Instr.Mov { dst; src; ty } -> (
        match ty with
        | F64 -> PMovF { dst; src }
        | _ -> PMovI { dst; src; ext = ext dst })
    | Instr.Unop { dst; op; src; w = _ } -> (
        match op with
        | Neg -> PNegI { dst; src; ext = ext dst }
        | Not -> PNotI { dst; src; ext = ext dst })
    | Instr.Binop { dst; op; l; r; w } -> (
        let e = ext dst and w64 = w = W64 in
        match op with
        | Add -> PAdd { dst; l; r; ext = e }
        | Sub -> PSub { dst; l; r; ext = e }
        | Mul -> PMul { dst; l; r; ext = e }
        | And -> PAnd { dst; l; r; ext = e }
        | Or -> POr { dst; l; r; ext = e }
        | Xor -> PXor { dst; l; r; ext = e }
        | Shl -> PShl { dst; l; r; w64; ext = e }
        | AShr -> PAShr { dst; l; r; w64; ext = e }
        | LShr -> PLShr { dst; l; r; w64; ext = e }
        | Div -> PDiv { dst; l; r; w64; ext = e }
        | Rem -> PRem { dst; l; r; w64; ext = e })
    | Instr.Cmp { dst; cond; l; r; w } ->
        (* 0/1 results are their own sign extension: no [ext] needed *)
        PCmp { dst; cond; w64 = w = W64; l; r }
    | Instr.Sext { r; from } -> (
        match from with
        | W32 -> PSext32 { r }
        | W8 -> PSextSub { r; sh = 56 }
        | W16 -> PSextSub { r; sh = 48 }
        | W64 -> PSextSub { r; sh = 0 })
    | Instr.Zext { r; from } ->
        PZext
          {
            r;
            mask =
              (match from with
              | W8 -> 0xFFL
              | W16 -> 0xFFFFL
              | W32 -> 0xFFFF_FFFFL
              | W64 -> -1L);
          }
    | Instr.JustExt _ -> PNop
    | Instr.FBinop { dst; op; l; r } -> (
        match op with
        | FAdd -> PFAdd { dst; l; r }
        | FSub -> PFSub { dst; l; r }
        | FMul -> PFMul { dst; l; r }
        | FDiv -> PFDiv { dst; l; r })
    | Instr.FNeg { dst; src } -> PFNeg { dst; src }
    | Instr.FCmp { dst; cond; l; r } -> PFCmp { dst; cond; l; r }
    | Instr.I2D { dst; src } | Instr.L2D { dst; src } -> PItoF { dst; src }
    | Instr.D2I { dst; src } ->
        (* saturated to int32: arrives sign-extended, no [ext] needed *)
        PD2I { dst; src }
    | Instr.D2L { dst; src } -> PD2L { dst; src; ext = ext dst }
    | Instr.NewArr { dst; elem; len } -> PNewArr { dst; elem; len; ext = ext dst }
    | Instr.ArrLoad { dst; arr; idx; elem; lext } ->
        PArrLoad
          { ldst = dst; larr = arr; lidx = idx; lelem = elem; llext = lext; lsx = ext dst }
    | Instr.ArrStore { arr; idx; src; elem } ->
        PArrStore { sarr = arr; sidx = idx; ssrc = src; selem = elem }
    | Instr.ArrLen { dst; arr } ->
        (* length is in [0, 2^31-1]: already extended *)
        PArrLen { dst; arr }
    | Instr.GLoad { dst; sym; ty; lext } -> (
        let slot = gslot sym in
        match ty with
        | F64 -> PGLoadF { dst; slot }
        | I32 -> PGLoadI32 { dst; slot; sign = lext = LSign; ext = ext dst }
        | _ -> PGLoadI { dst; slot; ext = ext dst })
    | Instr.GStore { sym; src; ty } -> (
        let slot = gslot sym in
        match ty with
        | F64 -> PGStoreF { slot; src }
        | I32 -> PGStoreI32 { slot; src }
        | _ -> PGStoreI { slot; src })
    | Instr.Call { dst; fn; args; ret } ->
        if List.mem fn builtin_names then begin
          (* builtins shadow user functions; arity and argument kinds are
             static, so the mismatch trap is decided here and the op only
             performs (or refuses) the effect at run time *)
          let post_trap = dst <> None in
          match (fn, args) with
          | ("print_int" | "print_long"), [ (r, (I32 | I64 | Ref)) ] ->
              PPrintI { r; post_trap }
          | "print_double", [ (r, F64) ] -> PPrintF { r; post_trap }
          | "checksum", [ (r, (I32 | I64 | Ref)) ] -> PCheckI { r; post_trap }
          | "checksum_double", [ (r, F64) ] -> PCheckF { r; post_trap }
          | _ -> PTrapOp { msg = "bad-builtin-arity" }
        end
        else
          let argv = Array.of_list (List.map pack_reg args) in
          let dst_i, expect, e =
            match (dst, ret) with
            | None, _ -> (-1, 0, false)
            | Some d, Some F64 -> (d, 2, false)
            | Some d, Some (I32 | I64 | Ref) -> (d, 1, ext d)
            | Some d, None -> (d, 3, false)
          in
          PCallUser { dst = dst_i; expect; ext = e; fn; fid = fslot fn; argv }
  in
  let nb = Cfg.num_blocks f in
  let bodies = Array.init nb (fun bid -> Cfg.body (Cfg.block f bid)) in
  let terms = Array.init nb (fun bid -> Cfg.term (Cfg.block f bid)) in
  let block_start = Array.make (max nb 1) 0 in
  let total = ref 0 in
  for bid = 0 to nb - 1 do
    block_start.(bid) <- !total;
    total := !total + List.length bodies.(bid) + 1
  done;
  let code = Array.make !total PNop in
  let costs = Array.make !total 0 in
  (* a target outside the function decodes to offset -1: the jump executes
     normally (tick, charge, profile) and the *fetch* of the missing block
     reproduces the structural engine's failure *)
  let target l = if l >= 0 && l < nb then block_start.(l) else -1 in
  let pos = ref 0 in
  let emit op cost =
    code.(!pos) <- op;
    costs.(!pos) <- cost;
    incr pos
  in
  for bid = 0 to nb - 1 do
    List.iter
      (fun (i : Instr.t) ->
        let cost =
          match i.Instr.op with
          | Instr.NewArr _ -> 0 (* dynamic: charged by the handler *)
          | op -> Cost.of_op op ~alloc_len:0L
        in
        emit (decode_op i.Instr.op) cost)
      bodies.(bid);
    let t = terms.(bid) in
    let tc = Cost.of_term t in
    match t with
    | Instr.Jmp l -> emit (PJmp { joff = target l; jsrc = bid; jdst = l }) tc
    | Instr.Br { cond; l; r; w; ifso; ifnot } ->
        emit
          (PBr
             {
               bcond = cond;
               bw64 = w = W64;
               bl = l;
               brx = r;
               bso = target ifso;
               bno = target ifnot;
               bsrc = bid;
               bsob = ifso;
               bnob = ifnot;
             })
          tc
    | Instr.Ret None -> emit PRet0 tc
    | Instr.Ret (Some (r, ty)) ->
        emit (match ty with F64 -> PRetF { r } | _ -> PRetI { r }) tc
  done;
  let fstats =
    if fuse = Fuse.Off then []
    else begin
      let is_start = Array.make (max !total 1) false in
      for bid = 0 to nb - 1 do
        is_start.(block_start.(bid)) <- true
      done;
      (* per-slot live-after sets, aligned with the flat layout: body
         slots from the block's per-instruction liveness (program
         order), the terminator slot from the block's live-out — the
         fuser's dead-intermediate-write elision reads these *)
      let live = Sxe_analysis.Liveness.compute f in
      let la = Array.make (max !total 1) (Bitset.create 0) in
      for bid = 0 to nb - 1 do
        let s = ref block_start.(bid) in
        List.iter
          (fun (_, set) ->
            la.(!s) <- set;
            incr s)
          (Sxe_analysis.Liveness.live_after_each live bid);
        la.(!s) <- Sxe_analysis.Liveness.live_out live bid
      done;
      fuse_code ~fuse ~is_start ~la code costs
    end
  in
  {
    fname = f.Cfg.name;
    nregs;
    params = Array.of_list (List.map pack_reg f.Cfg.params);
    code;
    costs;
    fstats;
    src = f;
  }

(** Flat-code listing, one line per slot: offset, a [B<bid>:] marker on
    block starts, and the opcode name. Slots shadowed by a preceding
    fused group are marked [.] — they keep their original ops (they stay
    valid jump-entry points) but a straight-line walk never dispatches
    them. Debugging and test aid for the fusion pass. *)
let disasm (p : pfunc) : string =
  let nb = Cfg.num_blocks p.src in
  let starts = Hashtbl.create 16 in
  let pos = ref 0 in
  for bid = 0 to nb - 1 do
    Hashtbl.replace starts !pos bid;
    pos := !pos + List.length (Cfg.body (Cfg.block p.src bid)) + 1
  done;
  let b = Buffer.create 256 in
  let shadow = ref 0 in
  Array.iteri
    (fun k op ->
      let mark =
        match Hashtbl.find_opt starts k with
        | Some bid -> Printf.sprintf "B%d:" bid
        | None -> ""
      in
      let shad =
        if !shadow > 0 then (
          decr shadow;
          ".")
        else (
          shadow := group_width op - 1;
          " ")
      in
      Buffer.add_string b
        (Printf.sprintf "%4d %-5s %s %s\n" k mark shad (op_name (op_id op))))
    p.code;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* The per-function decode cache                                       *)
(* ------------------------------------------------------------------ *)

(** Cached decoded images, one per (mode, fusion selection) — a tiny
    association list: a process rarely uses more than faithful/canonical
    times fused/unfused. Keyed by the function's generation counter, so
    any mutation through the {!Cfg} API drops every image; keyed by the
    fusion selection, so changing [SXE_FUSE] (or an explicit [~fuse])
    between runs can never serve a stale image. *)
type entry = {
  mutable eversion : int;
  mutable images : ((bool * string) * pfunc) list;
}

type Cfg.vm_cache += Cached of entry

let get_decoded ?(fuse = Fuse.Off) ~canonical (f : Cfg.func) : pfunc =
  let e =
    match f.Cfg.vm_cache with
    | Some (Cached e) ->
        let v = Cfg.version f in
        if e.eversion <> v then begin
          e.eversion <- v;
          e.images <- []
        end;
        e
    | _ ->
        let e = { eversion = Cfg.version f; images = [] } in
        f.Cfg.vm_cache <- Some (Cached e);
        e
  in
  let key = (canonical, Fuse.key fuse) in
  match List.assoc_opt key e.images with
  | Some p -> p
  | None ->
      let p = decode ~fuse ~canonical f in
      e.images <- (key, p) :: e.images;
      p

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

type state = {
  prog : Prog.t;
  canonical : bool;
  fuse : Fuse.selection;
  mutable depth : int;
  heap : cell option Vec.t;
  mutable gvi : int64 array;  (** dense global stores, indexed by [gslot] *)
  mutable gvf : float array;
  fpool_i : int64 array array;
      (** per-depth register-frame pool: calls at the same depth never
          overlap, so each depth reuses one frame (re-zeroed on entry)
          instead of allocating per call *)
  fpool_f : float array array;
  buf : Buffer.t;
  mutable checksum : int64;
  mutable executed : int;  (** native ints: no box per tick *)
  mutable sext32 : int;
  mutable sext_sub : int;
  mutable zext32 : int;
  mutable zext_sub : int;
  mutable cycles : int;
  fuel : int;
  profile : Profile.t option;
  mutable fcache : pfunc option array;
      (** per-run resolution cache, indexed by [fslot] id *)
  mutable ret_kind : int;  (** callee result: 0 none, 1 int, 2 float *)
  mutable ret_i : int64;
  mutable ret_f : float;
}

let resolve_slow st fn fid =
  (* [find_func] raises [Invalid_argument] for a missing function,
     which escapes the run as a crash — same as the structural engine *)
  let p =
    get_decoded ~fuse:st.fuse ~canonical:st.canonical (Prog.find_func st.prog fn)
  in
  if fid >= Array.length st.fcache then begin
    let ng = Array.make (max (fid + 1) ((2 * Array.length st.fcache) + 4)) None in
    Array.blit st.fcache 0 ng 0 (Array.length st.fcache);
    st.fcache <- ng
  end;
  st.fcache.(fid) <- Some p;
  p

let[@inline] resolve st fn fid =
  let fc = st.fcache in
  if fid < Array.length fc then
    match Array.unsafe_get fc fid with
    | Some p -> p
    | None -> resolve_slow st fn fid
  else resolve_slow st fn fid

(* Every array access funnels through here; the fast path is one range
   test and an unchecked fetch. The slow path reproduces the original
   checks in their original order (null first, then [Vec.get]'s own
   bounds error for a non-handle value). *)
let arr_cell_slow st h i =
  if Int64.equal h 0L then raise (Trap "null-pointer")
  else begin
    ignore (Vec.get st.heap i);
    raise (Trap "bad-handle")
  end

let[@inline] arr_cell st h =
  let hp = st.heap in
  let i = Int64.to_int h - 1 in
  if i >= 0 && i < Vec.length hp then
    match Vec.unsafe_get hp i with
    | Some c -> c
    | None -> raise (Trap "bad-handle")
  else arr_cell_slow st h i

let[@inline] cell_len = function
  | IArr { data; _ } -> Array.length data
  | FArr d -> Array.length d
  | RArr d -> Array.length d

(* bounds check on the sign-extended low 32 bits (IA64 cmp4), then the
   effective address consumes the full register. Native-int throughout —
   this is on the path of every array access and must not box: [i32] is
   the register's sext32 image; the register equals that image iff its
   bits 32..62 replicate bit 31 ([Int64.to_int] round-trips) {e and}
   bit 63 agrees with bit 31 (the signs match). *)
let[@inline] checked_index st idx_full len =
  let i32 = sx32 idx_full in
  if i32 < 0 || i32 >= len then raise (Trap "array-index-out-of-bounds");
  if
    st.canonical
    || (Int64.to_int idx_full = i32 && Int64.compare idx_full 0L < 0 = (i32 < 0))
  then i32
  else raise (Trap "wild-access")

(* Global slot arrays grow on first store to a fresh slot; a load from a
   slot the store array hasn't reached yet is a read of a never-written
   global, i.e. the zero default — same semantics the hash tables gave. *)
let gstore_i st slot v =
  let g = st.gvi in
  if slot < Array.length g then g.(slot) <- v
  else begin
    let ng = Array.make (max (slot + 1) ((2 * Array.length g) + 4)) 0L in
    Array.blit g 0 ng 0 (Array.length g);
    st.gvi <- ng;
    ng.(slot) <- v
  end

let gstore_f st slot v =
  let g = st.gvf in
  if slot < Array.length g then g.(slot) <- v
  else begin
    let ng = Array.make (max (slot + 1) ((2 * Array.length g) + 4)) 0.0 in
    Array.blit g 0 ng 0 (Array.length g);
    st.gvf <- ng;
    ng.(slot) <- v
  end

let out st s =
  Buffer.add_string st.buf s;
  Buffer.add_char st.buf '\n'

let rec exec (st : state) (p : pfunc) (ri : int64 array) (rf : float array) : unit =
  let code = p.code and costs = p.costs in
  if Array.length code = 0 then
    (* a function with no blocks: the structural engine fails fetching
       block 0; reproduce its exact exception *)
    ignore (Cfg.block p.src 0);
  let fuel = st.fuel in
  (* dispatch-pair histogram: off in normal runs ([pairs_nops = 0], one
     predictable branch per dispatch); when a profile with pairs enabled
     is attached, consecutive straight-line opcode ids are counted *)
  let pairs, pairs_nops =
    match st.profile with
    | Some pr when Profile.pairs_enabled pr -> (pr.Profile.pairs, pr.Profile.pairs_nops)
    | _ -> ([||], 0)
  in
  let prev = ref (-1) in
  let pc = ref 0 in
  let running = ref true in
  while !running do
    let cpc = !pc in
    let op = Array.unsafe_get code cpc in
    if pairs_nops <> 0 then begin
      let id = op_id op in
      if !prev >= 0 then begin
        let k = (!prev * pairs_nops) + id in
        pairs.(k) <- pairs.(k) + 1
      end;
      (* control transfers break straight-line adjacency: a (Br, target)
         pair is not a fusion candidate *)
      prev :=
        (match op with
        | PJmp _ | PBr _ | PRet0 | PRetI _ | PRetF _ | PCmpBr _ | PCmpConstBr _
        | PConstBr _ | PLoadBr _ | PMovJmp _ | PBinBr _ | PBinMovJmp _
        | PStoreMovJmp _ | PMovBr _ | PBinBinBr _ | PBinBinMovBr _
        | PLoadSxLoadBr _ | PSxLoadBinLoadBr _ | PSwapJmp _ | PStoreJmp _
        | PConstJmp _ | PBinSextMovJmp _ | PSextMovJmp _ | PBinBinRet _ ->
            -1
        | _ -> id)
    end;
    (* tick -> fuel trap -> charge, in the structural engine's order *)
    st.executed <- st.executed + 1;
    if st.executed > fuel then raise (Trap "fuel-exhausted");
    st.cycles <- st.cycles + Array.unsafe_get costs cpc;
    incr pc;
    match op with
    | PNop -> ()
    | PConstI { dst; v } -> ri.(dst) <- v
    | PConstF { dst; v } -> rf.(dst) <- v
    | PMovI { dst; src; ext } ->
        let v = ri.(src) in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PMovF { dst; src } -> rf.(dst) <- rf.(src)
    | PNegI { dst; src; ext } ->
        let v = Int64.neg ri.(src) in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PNotI { dst; src; ext } ->
        let v = Int64.lognot ri.(src) in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PAdd { dst; l; r; ext } ->
        let v = Int64.add ri.(l) ri.(r) in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PSub { dst; l; r; ext } ->
        let v = Int64.sub ri.(l) ri.(r) in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PMul { dst; l; r; ext } ->
        let v = Int64.mul ri.(l) ri.(r) in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PAnd { dst; l; r; ext } ->
        let v = Int64.logand ri.(l) ri.(r) in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | POr { dst; l; r; ext } ->
        let v = Int64.logor ri.(l) ri.(r) in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PXor { dst; l; r; ext } ->
        let v = Int64.logxor ri.(l) ri.(r) in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PShl { dst; l; r; w64; ext } ->
        let amt = Int64.to_int (Int64.logand ri.(r) (if w64 then 63L else 31L)) in
        let v = Int64.shift_left ri.(l) amt in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PAShr { dst; l; r; w64; ext } ->
        let amt = Int64.to_int (Int64.logand ri.(r) (if w64 then 63L else 31L)) in
        let v = Int64.shift_right ri.(l) amt in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PLShr { dst; l; r; w64; ext } ->
        let amt = Int64.to_int (Int64.logand ri.(r) (if w64 then 63L else 31L)) in
        let lv =
          (* canonical 32-bit machine zero-extends internally; the
             faithful machine shifts the full register and depends on
             the explicit [Zext] guard ({!Eval.binop_faithful}) *)
          if w64 || not st.canonical then ri.(l) else Eval.zext32 ri.(l)
        in
        let v = Int64.shift_right_logical lv amt in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PDiv { dst; l; r; w64; ext } ->
        let rv = ri.(r) in
        let zero =
          if w64 then Int64.equal rv 0L else Int64.equal (Eval.low32 rv) 0L
        in
        if zero then raise (Trap "division-by-zero");
        let v =
          if Int64.equal rv (-1L) then Int64.neg ri.(l) else Int64.div ri.(l) rv
        in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PRem { dst; l; r; w64; ext } ->
        let rv = ri.(r) in
        let zero =
          if w64 then Int64.equal rv 0L else Int64.equal (Eval.low32 rv) 0L
        in
        if zero then raise (Trap "division-by-zero");
        let v = if Int64.equal rv (-1L) then 0L else Int64.rem ri.(l) rv in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PCmp { dst; cond; w64; l; r } ->
        let t =
          if w64 then holds cond (Int64.compare ri.(l) ri.(r))
          else iholds cond (sx32 ri.(l)) (sx32 ri.(r))
        in
        ri.(dst) <- (if t then 1L else 0L)
    | PSext32 { r } ->
        st.sext32 <- st.sext32 + 1;
        ri.(r) <- Eval.sext32 ri.(r)
    | PSextSub { r; sh } ->
        st.sext_sub <- st.sext_sub + 1;
        ri.(r) <- Int64.shift_right (Int64.shift_left ri.(r) sh) sh
    | PZext { r; mask } ->
        if Int64.equal mask 0xFFFF_FFFFL then st.zext32 <- st.zext32 + 1
        else st.zext_sub <- st.zext_sub + 1;
        ri.(r) <- Int64.logand ri.(r) mask
    | PFAdd { dst; l; r } -> rf.(dst) <- rf.(l) +. rf.(r)
    | PFSub { dst; l; r } -> rf.(dst) <- rf.(l) -. rf.(r)
    | PFMul { dst; l; r } -> rf.(dst) <- rf.(l) *. rf.(r)
    | PFDiv { dst; l; r } -> rf.(dst) <- rf.(l) /. rf.(r)
    | PFNeg { dst; src } -> rf.(dst) <- -.rf.(src)
    | PFCmp { dst; cond; l; r } ->
        ri.(dst) <- (if Eval.fcmp cond rf.(l) rf.(r) then 1L else 0L)
    | PItoF { dst; src } -> rf.(dst) <- Int64.to_float ri.(src)
    | PD2I { dst; src } -> ri.(dst) <- Eval.d2i rf.(src)
    | PD2L { dst; src; ext } ->
        let v = Eval.d2l rf.(src) in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PNewArr { dst; elem; len; ext } ->
        let full = ri.(len) in
        let len32 = Eval.sext32 full in
        (* dynamic charge (the static cost slot is 0), before the traps,
           as the structural engine charges before executing *)
        st.cycles <- st.cycles + Cost.alloc_cost ~alloc_len:len32;
        if Int64.compare len32 0L < 0 then raise (Trap "negative-array-size");
        if (not st.canonical) && not (Int64.equal full len32) then
          raise (Trap "wild-access");
        let n = Int64.to_int len32 in
        if n > max_alloc then raise (Trap "allocation-too-large");
        let cell =
          match elem with
          | AF64 -> FArr (Array.make n 0.0)
          | ARef -> RArr (Array.make n 0)
          | e -> IArr { elem = e; data = Array.make n 0L }
        in
        let h = Vec.push st.heap (Some cell) in
        let v = Int64.of_int (h + 1) in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PArrLoad ld -> (
        let cell = arr_cell st ri.(ld.larr) in
        let k = checked_index st ri.(ld.lidx) (cell_len cell) in
        match cell with
        | IArr { data; _ } ->
            let v = elem_load ld.lelem ld.llext data.(k) in
            ri.(ld.ldst) <- (if ld.lsx then Eval.sext32 v else v)
        | FArr d -> rf.(ld.ldst) <- d.(k)
        | RArr d ->
            let v = Int64.of_int d.(k) in
            ri.(ld.ldst) <- (if ld.lsx then Eval.sext32 v else v))
    | PArrStore s -> (
        let cell = arr_cell st ri.(s.sarr) in
        let k = checked_index st ri.(s.sidx) (cell_len cell) in
        match cell with
        | IArr { data; _ } -> data.(k) <- elem_store s.selem ri.(s.ssrc)
        | FArr d -> d.(k) <- rf.(s.ssrc)
        | RArr d -> d.(k) <- Int64.to_int ri.(s.ssrc))
    | PArrLen { dst; arr } ->
        ri.(dst) <- Int64.of_int (cell_len (arr_cell st ri.(arr)))
    | PGLoadF { dst; slot } ->
        let g = st.gvf in
        rf.(dst) <- (if slot < Array.length g then g.(slot) else 0.0)
    | PGLoadI32 { dst; slot; sign; ext } ->
        let g = st.gvi in
        let cell = if slot < Array.length g then g.(slot) else 0L in
        let v = if sign then Eval.sext32 cell else Eval.zext32 cell in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PGLoadI { dst; slot; ext } ->
        let g = st.gvi in
        let v = if slot < Array.length g then g.(slot) else 0L in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PGStoreF { slot; src } -> gstore_f st slot rf.(src)
    | PGStoreI32 { slot; src } -> gstore_i st slot (Eval.zext32 ri.(src))
    | PGStoreI { slot; src } -> gstore_i st slot ri.(src)
    | PPrintI { r; post_trap } ->
        out st (Int64.to_string ri.(r));
        if post_trap then raise (Trap "missing-return")
    | PPrintF { r; post_trap } ->
        out st (Printf.sprintf "%.6g" rf.(r));
        if post_trap then raise (Trap "missing-return")
    | PCheckI { r; post_trap } ->
        st.checksum <- checksum_mix st.checksum ri.(r);
        if post_trap then raise (Trap "missing-return")
    | PCheckF { r; post_trap } ->
        st.checksum <- checksum_mix st.checksum (Int64.bits_of_float rf.(r));
        if post_trap then raise (Trap "missing-return")
    | PTrapOp { msg } -> raise (Trap msg)
    | PCallUser { dst; expect; ext; fn; fid; argv } -> (
        call_fn st fn fid ri rf argv;
        match expect with
        | 0 -> ()
        | 1 ->
            if st.ret_kind <> 1 then raise (Trap "bad-return");
            ri.(dst) <- (if ext then Eval.sext32 st.ret_i else st.ret_i)
        | 2 ->
            if st.ret_kind <> 2 then raise (Trap "bad-return");
            rf.(dst) <- st.ret_f
        | _ -> raise (Trap "bad-return"))
    | PJmp { joff; jsrc; jdst } ->
        (match st.profile with
        | Some prof -> Profile.record prof p.fname ~src:jsrc ~dst:jdst
        | None -> ());
        if joff >= 0 then pc := joff
        else begin
          (* target outside the function: the jump executed; the fetch of
             the missing block fails as in the structural engine *)
          ignore (Cfg.block p.src jdst);
          assert false
        end
    | PBr { bcond; bw64; bl; brx; bso; bno; bsrc; bsob; bnob } ->
        let lv = ri.(bl) and rv = ri.(brx) in
        let lv, rv = if bw64 then (lv, rv) else (Eval.sext32 lv, Eval.sext32 rv) in
        let taken = holds bcond (Int64.compare lv rv) in
        let t_off = if taken then bso else bno in
        let t_bid = if taken then bsob else bnob in
        (match st.profile with
        | Some prof -> Profile.record prof p.fname ~src:bsrc ~dst:t_bid
        | None -> ());
        if t_off >= 0 then pc := t_off
        else begin
          ignore (Cfg.block p.src t_bid);
          assert false
        end
    | PRet0 ->
        st.ret_kind <- 0;
        running := false
    | PRetI { r } ->
        st.ret_kind <- 1;
        st.ret_i <- ri.(r);
        running := false
    | PRetF { r } ->
        st.ret_kind <- 2;
        st.ret_f <- rf.(r);
        running := false
    (* Fused superinstructions. The loop head above already ticked,
       fuel-checked and charged the first constituent (the head slot
       keeps its original cost); each handler performs the head's
       effect, then the same three accounting steps (written out — this
       is the engine's hottest path and must not pay a closure call)
       before each further constituent's effect — the trap points,
       counter values and profile edges are bit-identical to the unfused
       dispatch sequence. Intermediate values are forwarded locally:
       when a branch/store operand register equals the register a
       constituent just defined, the handler substitutes the local value
       instead of reading it back, and the [w*] flags elide the register
       write entirely when liveness proved it dead (see [fuse_code]).
       Straight-line groups step [pc] past the shadowed constituent
       slots; groups ending in a control transfer set it absolutely. *)
    | PCmpBr { dst; cond; w64; l; r; wdst; c2; b } ->
        let bi =
          if w64 then holds cond (Int64.compare ri.(l) ri.(r))
          else iholds cond (sx32 ri.(l)) (sx32 ri.(r))
        in
        if wdst then ri.(dst) <- (if bi then 1L else 0L);
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + c2;
        let taken =
          if b.bw64 then
            let dv = if bi then 1L else 0L in
            let lv = if b.bl = dst then dv else ri.(b.bl) in
            let rv = if b.brx = dst then dv else ri.(b.brx) in
            holds b.bcond (Int64.compare lv rv)
          else
            let dv = if bi then 1 else 0 in
            let lv = if b.bl = dst then dv else sx32 ri.(b.bl) in
            let rv = if b.brx = dst then dv else sx32 ri.(b.brx) in
            iholds b.bcond lv rv
        in
        let t_off = if taken then b.bso else b.bno in
        let t_bid = if taken then b.bsob else b.bnob in
        (match st.profile with
        | Some prof -> Profile.record prof p.fname ~src:b.bsrc ~dst:t_bid
        | None -> ());
        if t_off >= 0 then pc := t_off
        else begin
          ignore (Cfg.block p.src t_bid);
          assert false
        end
    | PCmpConstBr { dst; cond; w64; l; r; wdst; d2; v2; wd2; c2; c3; t1; t0; b }
      ->
        let bi =
          if w64 then holds cond (Int64.compare ri.(l) ri.(r))
          else iholds cond (sx32 ri.(l)) (sx32 ri.(r))
        in
        if wdst then ri.(dst) <- (if bi then 1L else 0L);
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + c2;
        if wd2 then ri.(d2) <- v2;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + c3;
        let taken = if bi then t1 else t0 in
        let t_off = if taken then b.bso else b.bno in
        let t_bid = if taken then b.bsob else b.bnob in
        (match st.profile with
        | Some prof -> Profile.record prof p.fname ~src:b.bsrc ~dst:t_bid
        | None -> ());
        if t_off >= 0 then pc := t_off
        else begin
          ignore (Cfg.block p.src t_bid);
          assert false
        end
    | PConstBr { d1; v; cvi; wd1; c2; b } ->
        if wd1 then ri.(d1) <- v;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + c2;
        let taken =
          if b.bw64 then
            let lv = if b.bl = d1 then v else ri.(b.bl) in
            let rv = if b.brx = d1 then v else ri.(b.brx) in
            holds b.bcond (Int64.compare lv rv)
          else
            let lv = if b.bl = d1 then cvi else sx32 ri.(b.bl) in
            let rv = if b.brx = d1 then cvi else sx32 ri.(b.brx) in
            iholds b.bcond lv rv
        in
        let t_off = if taken then b.bso else b.bno in
        let t_bid = if taken then b.bsob else b.bnob in
        (match st.profile with
        | Some prof -> Profile.record prof p.fname ~src:b.bsrc ~dst:t_bid
        | None -> ());
        if t_off >= 0 then pc := t_off
        else begin
          ignore (Cfg.block p.src t_bid);
          assert false
        end
    | PLoadBr { ld; wdst; c2; b } ->
        let cell = arr_cell st ri.(ld.larr) in
        let k = checked_index st ri.(ld.lidx) (cell_len cell) in
        (* [iv]: the int-register image of the load destination after
           the load (a float load leaves it untouched) — the branch
           reads it locally, without the register round-trip *)
        let iv =
          match cell with
          | IArr { data; _ } ->
              let v = elem_load ld.lelem ld.llext data.(k) in
              let v = if ld.lsx then Eval.sext32 v else v in
              if wdst then ri.(ld.ldst) <- v;
              v
          | FArr d ->
              if wdst then rf.(ld.ldst) <- d.(k);
              ri.(ld.ldst)
          | RArr d ->
              let v = Int64.of_int d.(k) in
              let v = if ld.lsx then Eval.sext32 v else v in
              if wdst then ri.(ld.ldst) <- v;
              v
        in
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + c2;
        let taken =
          if b.bw64 then
            let lv = if b.bl = ld.ldst then iv else ri.(b.bl) in
            let rv = if b.brx = ld.ldst then iv else ri.(b.brx) in
            holds b.bcond (Int64.compare lv rv)
          else
            let lv = if b.bl = ld.ldst then sx32 iv else sx32 ri.(b.bl) in
            let rv = if b.brx = ld.ldst then sx32 iv else sx32 ri.(b.brx) in
            iholds b.bcond lv rv
        in
        let t_off = if taken then b.bso else b.bno in
        let t_bid = if taken then b.bsob else b.bnob in
        (match st.profile with
        | Some prof -> Profile.record prof p.fname ~src:b.bsrc ~dst:t_bid
        | None -> ());
        if t_off >= 0 then pc := t_off
        else begin
          ignore (Cfg.block p.src t_bid);
          assert false
        end
    | PMovJmp { mdst; msrc; mext; mw; mc2; mj } ->
        if mw then begin
          let v = ri.(msrc) in
          ri.(mdst) <- (if mext then Eval.sext32 v else v)
        end;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + mc2;
        (match st.profile with
        | Some prof -> Profile.record prof p.fname ~src:mj.jsrc ~dst:mj.jdst
        | None -> ());
        if mj.joff >= 0 then pc := mj.joff
        else begin
          ignore (Cfg.block p.src mj.jdst);
          assert false
        end
    | PStoreJmp { s; c2; j } ->
        (let cell = arr_cell st ri.(s.sarr) in
         let k = checked_index st ri.(s.sidx) (cell_len cell) in
         match cell with
         | IArr { data; _ } -> data.(k) <- elem_store s.selem ri.(s.ssrc)
         | FArr d -> d.(k) <- rf.(s.ssrc)
         | RArr d -> d.(k) <- Int64.to_int ri.(s.ssrc));
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + c2;
        (match st.profile with
        | Some prof -> Profile.record prof p.fname ~src:j.jsrc ~dst:j.jdst
        | None -> ());
        if j.joff >= 0 then pc := j.joff
        else begin
          ignore (Cfg.block p.src j.jdst);
          assert false
        end
    | PConstJmp { dst; v; wd1; c2; j } ->
        if wd1 then ri.(dst) <- v;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + c2;
        (match st.profile with
        | Some prof -> Profile.record prof p.fname ~src:j.jsrc ~dst:j.jdst
        | None -> ());
        if j.joff >= 0 then pc := j.joff
        else begin
          ignore (Cfg.block p.src j.jdst);
          assert false
        end
    | PSextLoad { sr; wsr; c2; ld } ->
        st.sext32 <- st.sext32 + 1;
        let xi = sx32 ri.(sr) in
        if wsr then ri.(sr) <- Int64.of_int xi;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + c2;
        let cell = arr_cell st ri.(ld.larr) in
        if xi < 0 || xi >= cell_len cell then
          raise (Trap "array-index-out-of-bounds");
        (* the index was just re-extended: full = low32, so the
           wild-access check can never fire — index directly *)
        (match cell with
        | IArr { data; _ } ->
            let v = elem_load ld.lelem ld.llext data.(xi) in
            ri.(ld.ldst) <- (if ld.lsx then Eval.sext32 v else v)
        | FArr d -> rf.(ld.ldst) <- d.(xi)
        | RArr d ->
            let v = Int64.of_int d.(xi) in
            ri.(ld.ldst) <- (if ld.lsx then Eval.sext32 v else v));
        incr pc
    | PLoadSext { ld; c2; xr; sh } ->
        let cell = arr_cell st ri.(ld.larr) in
        let k = checked_index st ri.(ld.lidx) (cell_len cell) in
        (match cell with
        | IArr { data; _ } ->
            let v = elem_load ld.lelem ld.llext data.(k) in
            let v = if ld.lsx then Eval.sext32 v else v in
            st.executed <- st.executed + 1;
            if st.executed > fuel then raise (Trap "fuel-exhausted");
            st.cycles <- st.cycles + c2;
            (* [xr = ld.ldst]: the load's write is overwritten by the
               re-extension before any observation point — write once *)
            if sh < 0 then begin
              st.sext32 <- st.sext32 + 1;
              ri.(xr) <- Int64.of_int (sx32 v)
            end
            else begin
              st.sext_sub <- st.sext_sub + 1;
              ri.(xr) <- Int64.shift_right (Int64.shift_left v sh) sh
            end
        | FArr d ->
            rf.(ld.ldst) <- d.(k);
            st.executed <- st.executed + 1;
            if st.executed > fuel then raise (Trap "fuel-exhausted");
            st.cycles <- st.cycles + c2;
            (* float load: the re-extension reads the untouched int
               register, exactly as the unfused sequence does *)
            if sh < 0 then begin
              st.sext32 <- st.sext32 + 1;
              ri.(xr) <- Eval.sext32 ri.(xr)
            end
            else begin
              st.sext_sub <- st.sext_sub + 1;
              ri.(xr) <- Int64.shift_right (Int64.shift_left ri.(xr) sh) sh
            end
        | RArr d ->
            let v = Int64.of_int d.(k) in
            let v = if ld.lsx then Eval.sext32 v else v in
            st.executed <- st.executed + 1;
            if st.executed > fuel then raise (Trap "fuel-exhausted");
            st.cycles <- st.cycles + c2;
            if sh < 0 then begin
              st.sext32 <- st.sext32 + 1;
              ri.(xr) <- Int64.of_int (sx32 v)
            end
            else begin
              st.sext_sub <- st.sext_sub + 1;
              ri.(xr) <- Int64.shift_right (Int64.shift_left v sh) sh
            end);
        incr pc
    | PZextLoad { zr; mask; wzr; c2; ld } ->
        if Int64.equal mask 0xFFFF_FFFFL then st.zext32 <- st.zext32 + 1
        else st.zext_sub <- st.zext_sub + 1;
        let zv = Int64.logand ri.(zr) mask in
        if wzr then ri.(zr) <- zv;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + c2;
        let cell = arr_cell st ri.(ld.larr) in
        let xi = sx32 zv in
        if xi < 0 || xi >= cell_len cell then
          raise (Trap "array-index-out-of-bounds");
        (* the index was just masked: non-negative ⇒ full = low32, so the
           wild-access check can never fire — index directly *)
        (match cell with
        | IArr { data; _ } ->
            let v = elem_load ld.lelem ld.llext data.(xi) in
            ri.(ld.ldst) <- (if ld.lsx then Eval.sext32 v else v)
        | FArr d -> rf.(ld.ldst) <- d.(xi)
        | RArr d ->
            let v = Int64.of_int d.(xi) in
            ri.(ld.ldst) <- (if ld.lsx then Eval.sext32 v else v));
        incr pc
    | PLoadZext { ld; c2; xr; mask } ->
        let cell = arr_cell st ri.(ld.larr) in
        let k = checked_index st ri.(ld.lidx) (cell_len cell) in
        (match cell with
        | IArr { data; _ } ->
            let v = elem_load ld.lelem ld.llext data.(k) in
            let v = if ld.lsx then Eval.sext32 v else v in
            st.executed <- st.executed + 1;
            if st.executed > fuel then raise (Trap "fuel-exhausted");
            st.cycles <- st.cycles + c2;
            (* [xr = ld.ldst]: the load's write is overwritten by the
               truncation before any observation point — write once *)
            if Int64.equal mask 0xFFFF_FFFFL then st.zext32 <- st.zext32 + 1
            else st.zext_sub <- st.zext_sub + 1;
            ri.(xr) <- Int64.logand v mask
        | FArr d ->
            rf.(ld.ldst) <- d.(k);
            st.executed <- st.executed + 1;
            if st.executed > fuel then raise (Trap "fuel-exhausted");
            st.cycles <- st.cycles + c2;
            (* float load: the zext reads the untouched int register,
               exactly as the unfused sequence does *)
            if Int64.equal mask 0xFFFF_FFFFL then st.zext32 <- st.zext32 + 1
            else st.zext_sub <- st.zext_sub + 1;
            ri.(xr) <- Int64.logand ri.(xr) mask
        | RArr d ->
            let v = Int64.of_int d.(k) in
            let v = if ld.lsx then Eval.sext32 v else v in
            st.executed <- st.executed + 1;
            if st.executed > fuel then raise (Trap "fuel-exhausted");
            st.cycles <- st.cycles + c2;
            if Int64.equal mask 0xFFFF_FFFFL then st.zext32 <- st.zext32 + 1
            else st.zext_sub <- st.zext_sub + 1;
            ri.(xr) <- Int64.logand v mask);
        incr pc
    | PConstBin { d1; v; wd1; k; kw; dst; l; r; ext; c2 } ->
        if wd1 then ri.(d1) <- v;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + c2;
        let lv = if l = d1 then v else ri.(l) in
        let rv = if r = d1 then v else ri.(r) in
        let v2 =
          bin_eval st.canonical k kw lv rv
        in
        ri.(dst) <- (if ext then Eval.sext32 v2 else v2);
        incr pc
    | PAddStore { dst; l; r; ext; wdst; c2; s } ->
        let v = Int64.add ri.(l) ri.(r) in
        let v = if ext then Eval.sext32 v else v in
        if wdst then ri.(dst) <- v;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + c2;
        let cell = arr_cell st (if s.sarr = dst then v else ri.(s.sarr)) in
        let k =
          checked_index st
            (if s.sidx = dst then v else ri.(s.sidx))
            (cell_len cell)
        in
        (match cell with
        | IArr { data; _ } ->
            data.(k) <-
              elem_store s.selem (if s.ssrc = dst then v else ri.(s.ssrc))
        | FArr d -> d.(k) <- rf.(s.ssrc)
        | RArr d ->
            d.(k) <- Int64.to_int (if s.ssrc = dst then v else ri.(s.ssrc)));
        incr pc
    (* Adjacent-array-access pairs: no data-dependency conditions, so
       both constituents execute verbatim — only the dispatch between
       them is saved. *)
    | PLoadLoad { l1; c2; l2 } ->
        (let cell = arr_cell st ri.(l1.larr) in
         let k = checked_index st ri.(l1.lidx) (cell_len cell) in
         match cell with
         | IArr { data; _ } ->
             let v = elem_load l1.lelem l1.llext data.(k) in
             ri.(l1.ldst) <- (if l1.lsx then Eval.sext32 v else v)
         | FArr d -> rf.(l1.ldst) <- d.(k)
         | RArr d ->
             let v = Int64.of_int d.(k) in
             ri.(l1.ldst) <- (if l1.lsx then Eval.sext32 v else v));
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + c2;
        (let cell = arr_cell st ri.(l2.larr) in
         let k = checked_index st ri.(l2.lidx) (cell_len cell) in
         match cell with
         | IArr { data; _ } ->
             let v = elem_load l2.lelem l2.llext data.(k) in
             ri.(l2.ldst) <- (if l2.lsx then Eval.sext32 v else v)
         | FArr d -> rf.(l2.ldst) <- d.(k)
         | RArr d ->
             let v = Int64.of_int d.(k) in
             ri.(l2.ldst) <- (if l2.lsx then Eval.sext32 v else v));
        incr pc
    | PLoadStore { ld; c2; s } ->
        (let cell = arr_cell st ri.(ld.larr) in
         let k = checked_index st ri.(ld.lidx) (cell_len cell) in
         match cell with
         | IArr { data; _ } ->
             let v = elem_load ld.lelem ld.llext data.(k) in
             ri.(ld.ldst) <- (if ld.lsx then Eval.sext32 v else v)
         | FArr d -> rf.(ld.ldst) <- d.(k)
         | RArr d ->
             let v = Int64.of_int d.(k) in
             ri.(ld.ldst) <- (if ld.lsx then Eval.sext32 v else v));
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + c2;
        (let cell = arr_cell st ri.(s.sarr) in
         let k = checked_index st ri.(s.sidx) (cell_len cell) in
         match cell with
         | IArr { data; _ } -> data.(k) <- elem_store s.selem ri.(s.ssrc)
         | FArr d -> d.(k) <- rf.(s.ssrc)
         | RArr d -> d.(k) <- Int64.to_int ri.(s.ssrc));
        incr pc
    | PStoreStore { s1; c2; s2 } ->
        (let cell = arr_cell st ri.(s1.sarr) in
         let k = checked_index st ri.(s1.sidx) (cell_len cell) in
         match cell with
         | IArr { data; _ } -> data.(k) <- elem_store s1.selem ri.(s1.ssrc)
         | FArr d -> d.(k) <- rf.(s1.ssrc)
         | RArr d -> d.(k) <- Int64.to_int ri.(s1.ssrc));
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + c2;
        (let cell = arr_cell st ri.(s2.sarr) in
         let k = checked_index st ri.(s2.sidx) (cell_len cell) in
         match cell with
         | IArr { data; _ } -> data.(k) <- elem_store s2.selem ri.(s2.ssrc)
         | FArr d -> d.(k) <- rf.(s2.ssrc)
         | RArr d -> d.(k) <- Int64.to_int ri.(s2.ssrc));
        incr pc
    (* Chained superinstructions. Each embedded payload executes exactly
       as its own handler would (same writes, same elisions — a write
       skipped by a [w*] flag is dead downstream, so the tail's register
       reads are unaffected), with the second group's head accounting
       step in between. *)
    | PBinBin { a; hb; b2; s2l; s2r; xw1; xw2 } ->
        if a.wd1 then ri.(a.d1) <- a.v;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + a.c2;
        let lv = if a.l = a.d1 then a.v else ri.(a.l) in
        let rv = if a.r = a.d1 then a.v else ri.(a.r) in
        let av =
          bin_eval st.canonical a.k a.kw lv rv
        in
        let v1 = if a.ext then Eval.sext32 av else av in
        if xw1 then ri.(a.dst) <- v1;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + hb;
        if b2.wd1 then ri.(b2.d1) <- b2.v;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + b2.c2;
        let lv =
          match s2l with 1 -> v1 | 3 -> a.v | 4 -> b2.v | _ -> ri.(b2.l)
        in
        let rv =
          match s2r with 1 -> v1 | 3 -> a.v | 4 -> b2.v | _ -> ri.(b2.r)
        in
        let bv =
          bin_eval st.canonical b2.k b2.kw lv rv
        in
        if xw2 then ri.(b2.dst) <- (if b2.ext then Eval.sext32 bv else bv);
        pc := !pc + 3
    | PBinSext { a; cs; xw } ->
        if a.wd1 then ri.(a.d1) <- a.v;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + a.c2;
        let lv = if a.l = a.d1 then a.v else ri.(a.l) in
        let rv = if a.r = a.d1 then a.v else ri.(a.r) in
        let av = bin_eval st.canonical a.k a.kw lv rv in
        let v1 = if a.ext then Eval.sext32 av else av in
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + cs;
        st.sext32 <- st.sext32 + 1;
        if xw then ri.(a.dst) <- Int64.of_int (sx32 v1);
        pc := !pc + 2
    | PBinSextMovJmp { a; cs; xw; hm; smv; m } ->
        if a.wd1 then ri.(a.d1) <- a.v;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + a.c2;
        let lv = if a.l = a.d1 then a.v else ri.(a.l) in
        let rv = if a.r = a.d1 then a.v else ri.(a.r) in
        let av = bin_eval st.canonical a.k a.kw lv rv in
        let v1 = if a.ext then Eval.sext32 av else av in
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + cs;
        st.sext32 <- st.sext32 + 1;
        let xi = sx32 v1 in
        if xw then ri.(a.dst) <- Int64.of_int xi;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + hm;
        if m.mw then begin
          let v =
            match smv with 1 -> Int64.of_int xi | 3 -> a.v | _ -> ri.(m.msrc)
          in
          ri.(m.mdst) <- (if m.mext then Eval.sext32 v else v)
        end;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + m.mc2;
        (match st.profile with
        | Some prof -> Profile.record prof p.fname ~src:m.mj.jsrc ~dst:m.mj.jdst
        | None -> ());
        if m.mj.joff >= 0 then pc := m.mj.joff
        else begin
          ignore (Cfg.block p.src m.mj.jdst);
          assert false
        end
    | PSextMovJmp { xr; xw; hm; smv; m } ->
        st.sext32 <- st.sext32 + 1;
        let xi = sx32 ri.(xr) in
        if xw then ri.(xr) <- Int64.of_int xi;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + hm;
        if m.mw then begin
          let v = if smv = 1 then Int64.of_int xi else ri.(m.msrc) in
          ri.(m.mdst) <- (if m.mext then Eval.sext32 v else v)
        end;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + m.mc2;
        (match st.profile with
        | Some prof -> Profile.record prof p.fname ~src:m.mj.jsrc ~dst:m.mj.jdst
        | None -> ());
        if m.mj.joff >= 0 then pc := m.mj.joff
        else begin
          ignore (Cfg.block p.src m.mj.jdst);
          assert false
        end
    | PGStoreGLoad { sslot; src; c2; ldst; lslot; lsign; lext; wl } ->
        gstore_i st sslot (Eval.zext32 ri.(src));
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + c2;
        let g = st.gvi in
        let cell = if lslot < Array.length g then g.(lslot) else 0L in
        let v = if lsign then Eval.sext32 cell else Eval.zext32 cell in
        if wl then ri.(ldst) <- (if lext then Eval.sext32 v else v);
        incr pc
    | PGLoadBinBin
        {
          gdst;
          gslot;
          gsign;
          gext;
          wg;
          hb;
          sal;
          sar;
          bb = { a; hb = hb2; b2; s2l; s2r; xw1; xw2 };
        } ->
        let g = st.gvi in
        let cell = if gslot < Array.length g then g.(gslot) else 0L in
        let v = if gsign then Eval.sext32 cell else Eval.zext32 cell in
        let gv = if gext then Eval.sext32 v else v in
        if wg then ri.(gdst) <- gv;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + hb;
        if a.wd1 then ri.(a.d1) <- a.v;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + a.c2;
        let lv =
          if a.l = a.d1 then a.v else if sal = 6 then gv else ri.(a.l)
        in
        let rv =
          if a.r = a.d1 then a.v else if sar = 6 then gv else ri.(a.r)
        in
        let av = bin_eval st.canonical a.k a.kw lv rv in
        let v1 = if a.ext then Eval.sext32 av else av in
        if xw1 then ri.(a.dst) <- v1;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + hb2;
        if b2.wd1 then ri.(b2.d1) <- b2.v;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + b2.c2;
        let lv =
          match s2l with
          | 1 -> v1
          | 3 -> a.v
          | 4 -> b2.v
          | 6 -> gv
          | _ -> ri.(b2.l)
        in
        let rv =
          match s2r with
          | 1 -> v1
          | 3 -> a.v
          | 4 -> b2.v
          | 6 -> gv
          | _ -> ri.(b2.r)
        in
        let bv = bin_eval st.canonical b2.k b2.kw lv rv in
        if xw2 then ri.(b2.dst) <- (if b2.ext then Eval.sext32 bv else bv);
        pc := !pc + 4
    | PBinBinRet { bb = { a; hb; b2; s2l; s2r; xw1; xw2 }; cr; r; sr } ->
        if a.wd1 then ri.(a.d1) <- a.v;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + a.c2;
        let lv = if a.l = a.d1 then a.v else ri.(a.l) in
        let rv = if a.r = a.d1 then a.v else ri.(a.r) in
        let av = bin_eval st.canonical a.k a.kw lv rv in
        let v1 = if a.ext then Eval.sext32 av else av in
        if xw1 then ri.(a.dst) <- v1;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + hb;
        if b2.wd1 then ri.(b2.d1) <- b2.v;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + b2.c2;
        let lv =
          match s2l with 1 -> v1 | 3 -> a.v | 4 -> b2.v | _ -> ri.(b2.l)
        in
        let rv =
          match s2r with 1 -> v1 | 3 -> a.v | 4 -> b2.v | _ -> ri.(b2.r)
        in
        let bv = bin_eval st.canonical b2.k b2.kw lv rv in
        let v2 = if b2.ext then Eval.sext32 bv else bv in
        if xw2 then ri.(b2.dst) <- v2;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + cr;
        st.ret_kind <- 1;
        st.ret_i <-
          (match sr with
          | 1 -> v1
          | 2 -> v2
          | 3 -> a.v
          | 4 -> b2.v
          | _ -> ri.(r));
        running := false
    | PBinBr { a; xw; cb; sbl; sbr; b } ->
        if a.wd1 then ri.(a.d1) <- a.v;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + a.c2;
        let lv = if a.l = a.d1 then a.v else ri.(a.l) in
        let rv = if a.r = a.d1 then a.v else ri.(a.r) in
        let av =
          bin_eval st.canonical a.k a.kw lv rv
        in
        let v1 = if a.ext then Eval.sext32 av else av in
        if xw then ri.(a.dst) <- v1;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + cb;
        let lv = match sbl with 1 -> v1 | 3 -> a.v | _ -> ri.(b.bl) in
        let rv = match sbr with 1 -> v1 | 3 -> a.v | _ -> ri.(b.brx) in
        let taken =
          if b.bw64 then holds b.bcond (Int64.compare lv rv)
          else iholds b.bcond (sx32 lv) (sx32 rv)
        in
        let t_off = if taken then b.bso else b.bno in
        let t_bid = if taken then b.bsob else b.bnob in
        (match st.profile with
        | Some prof -> Profile.record prof p.fname ~src:b.bsrc ~dst:t_bid
        | None -> ());
        if t_off >= 0 then pc := t_off
        else begin
          ignore (Cfg.block p.src t_bid);
          assert false
        end
    | PBinMovJmp { a; xw; hm; smv; m } ->
        if a.wd1 then ri.(a.d1) <- a.v;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + a.c2;
        let lv = if a.l = a.d1 then a.v else ri.(a.l) in
        let rv = if a.r = a.d1 then a.v else ri.(a.r) in
        let av =
          bin_eval st.canonical a.k a.kw lv rv
        in
        let v1 = if a.ext then Eval.sext32 av else av in
        if xw then ri.(a.dst) <- v1;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + hm;
        if m.mw then begin
          let v = match smv with 1 -> v1 | 3 -> a.v | _ -> ri.(m.msrc) in
          ri.(m.mdst) <- (if m.mext then Eval.sext32 v else v)
        end;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + m.mc2;
        (match st.profile with
        | Some prof -> Profile.record prof p.fname ~src:m.mj.jsrc ~dst:m.mj.jdst
        | None -> ());
        if m.mj.joff >= 0 then pc := m.mj.joff
        else begin
          ignore (Cfg.block p.src m.mj.jdst);
          assert false
        end
    | PStoreMovJmp { s; hm; m } ->
        (let cell = arr_cell st ri.(s.sarr) in
         let k = checked_index st ri.(s.sidx) (cell_len cell) in
         match cell with
         | IArr { data; _ } -> data.(k) <- elem_store s.selem ri.(s.ssrc)
         | FArr d -> d.(k) <- rf.(s.ssrc)
         | RArr d -> d.(k) <- Int64.to_int ri.(s.ssrc));
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + hm;
        if m.mw then begin
          let v = ri.(m.msrc) in
          ri.(m.mdst) <- (if m.mext then Eval.sext32 v else v)
        end;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + m.mc2;
        (match st.profile with
        | Some prof -> Profile.record prof p.fname ~src:m.mj.jsrc ~dst:m.mj.jdst
        | None -> ());
        if m.mj.joff >= 0 then pc := m.mj.joff
        else begin
          ignore (Cfg.block p.src m.mj.jdst);
          assert false
        end
    (* Block-shaped superinstructions. Constituent effects and
       accounting steps run in program order exactly as above; the
       difference is that every in-group register read of an in-group
       value goes through a fuse-time source code into a local, so the
       [w*] write flags — computed against liveness at the end of the
       group — can skip most intermediate register-file writes. A
       float-typed cell at run time leaves the loaded local holding the
       stale integer register, exactly what the structural engine's
       int-register reads would see. *)
    | PMovBr { vdst; vsrc; vext; vw; vc2; vb = b } ->
        let mv =
          let v = ri.(vsrc) in
          if vext then Eval.sext32 v else v
        in
        if vw then ri.(vdst) <- mv;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + vc2;
        let lv = if b.bl = vdst then mv else ri.(b.bl) in
        let rv = if b.brx = vdst then mv else ri.(b.brx) in
        let taken =
          if b.bw64 then holds b.bcond (Int64.compare lv rv)
          else iholds b.bcond (sx32 lv) (sx32 rv)
        in
        let t_off = if taken then b.bso else b.bno in
        let t_bid = if taken then b.bsob else b.bnob in
        (match st.profile with
        | Some prof -> Profile.record prof p.fname ~src:b.bsrc ~dst:t_bid
        | None -> ());
        if t_off >= 0 then pc := t_off
        else begin
          ignore (Cfg.block p.src t_bid);
          assert false
        end
    | PBinBinBr { bb = { a; hb; b2; s2l; s2r; xw1; xw2 }; cb; sbl; sbr; b }
      ->
        if a.wd1 then ri.(a.d1) <- a.v;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + a.c2;
        let lv = if a.l = a.d1 then a.v else ri.(a.l) in
        let rv = if a.r = a.d1 then a.v else ri.(a.r) in
        let av =
          bin_eval st.canonical a.k a.kw lv rv
        in
        let v1 = if a.ext then Eval.sext32 av else av in
        if xw1 then ri.(a.dst) <- v1;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + hb;
        if b2.wd1 then ri.(b2.d1) <- b2.v;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + b2.c2;
        let lv =
          match s2l with 1 -> v1 | 3 -> a.v | 4 -> b2.v | _ -> ri.(b2.l)
        in
        let rv =
          match s2r with 1 -> v1 | 3 -> a.v | 4 -> b2.v | _ -> ri.(b2.r)
        in
        let bv =
          bin_eval st.canonical b2.k b2.kw lv rv
        in
        let v2 = if b2.ext then Eval.sext32 bv else bv in
        if xw2 then ri.(b2.dst) <- v2;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + cb;
        let lv =
          match sbl with
          | 1 -> v1
          | 2 -> v2
          | 3 -> a.v
          | 4 -> b2.v
          | _ -> ri.(b.bl)
        in
        let rv =
          match sbr with
          | 1 -> v1
          | 2 -> v2
          | 3 -> a.v
          | 4 -> b2.v
          | _ -> ri.(b.brx)
        in
        let taken =
          if b.bw64 then holds b.bcond (Int64.compare lv rv)
          else iholds b.bcond (sx32 lv) (sx32 rv)
        in
        let t_off = if taken then b.bso else b.bno in
        let t_bid = if taken then b.bsob else b.bnob in
        (match st.profile with
        | Some prof -> Profile.record prof p.fname ~src:b.bsrc ~dst:t_bid
        | None -> ());
        if t_off >= 0 then pc := t_off
        else begin
          ignore (Cfg.block p.src t_bid);
          assert false
        end
    | PBinBinMovBr { bb = { a; hb; b2; s2l; s2r; xw1; xw2 }; hm; smv; m; sbl; sbr }
      ->
        if a.wd1 then ri.(a.d1) <- a.v;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + a.c2;
        let lv = if a.l = a.d1 then a.v else ri.(a.l) in
        let rv = if a.r = a.d1 then a.v else ri.(a.r) in
        let av =
          bin_eval st.canonical a.k a.kw lv rv
        in
        let v1 = if a.ext then Eval.sext32 av else av in
        if xw1 then ri.(a.dst) <- v1;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + hb;
        if b2.wd1 then ri.(b2.d1) <- b2.v;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + b2.c2;
        let lv =
          match s2l with 1 -> v1 | 3 -> a.v | 4 -> b2.v | _ -> ri.(b2.l)
        in
        let rv =
          match s2r with 1 -> v1 | 3 -> a.v | 4 -> b2.v | _ -> ri.(b2.r)
        in
        let bv =
          bin_eval st.canonical b2.k b2.kw lv rv
        in
        let v2 = if b2.ext then Eval.sext32 bv else bv in
        if xw2 then ri.(b2.dst) <- v2;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + hm;
        let mv =
          let v =
            match smv with
            | 1 -> v1
            | 2 -> v2
            | 3 -> a.v
            | 4 -> b2.v
            | _ -> ri.(m.vsrc)
          in
          if m.vext then Eval.sext32 v else v
        in
        if m.vw then ri.(m.vdst) <- mv;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + m.vc2;
        let b = m.vb in
        let lv =
          match sbl with
          | 1 -> v1
          | 2 -> v2
          | 3 -> a.v
          | 4 -> b2.v
          | 5 -> mv
          | _ -> ri.(b.bl)
        in
        let rv =
          match sbr with
          | 1 -> v1
          | 2 -> v2
          | 3 -> a.v
          | 4 -> b2.v
          | 5 -> mv
          | _ -> ri.(b.brx)
        in
        let taken =
          if b.bw64 then holds b.bcond (Int64.compare lv rv)
          else iholds b.bcond (sx32 lv) (sx32 rv)
        in
        let t_off = if taken then b.bso else b.bno in
        let t_bid = if taken then b.bsob else b.bnob in
        (match st.profile with
        | Some prof -> Profile.record prof p.fname ~src:b.bsrc ~dst:t_bid
        | None -> ());
        if t_off >= 0 then pc := t_off
        else begin
          ignore (Cfg.block p.src t_bid);
          assert false
        end
    | PLoadSxLoad { l1; w1; cs; sr; wsr; f1; cl; l2 } ->
        let cell1 = arr_cell st ri.(l1.larr) in
        let k1 = checked_index st ri.(l1.lidx) (cell_len cell1) in
        let u1 =
          match cell1 with
          | IArr { data; _ } ->
              let v = elem_load l1.lelem l1.llext data.(k1) in
              let v = if l1.lsx then Eval.sext32 v else v in
              if w1 then ri.(l1.ldst) <- v;
              v
          | FArr d ->
              if w1 then rf.(l1.ldst) <- d.(k1);
              ri.(l1.ldst)
          | RArr d ->
              let v = Int64.of_int d.(k1) in
              let v = if l1.lsx then Eval.sext32 v else v in
              if w1 then ri.(l1.ldst) <- v;
              v
        in
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + cs;
        st.sext32 <- st.sext32 + 1;
        let xi = sx32 (if f1 then u1 else ri.(sr)) in
        if wsr then ri.(sr) <- Int64.of_int xi;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + cl;
        let cell2 = arr_cell st ri.(l2.larr) in
        if xi < 0 || xi >= cell_len cell2 then
          raise (Trap "array-index-out-of-bounds");
        (match cell2 with
        | IArr { data; _ } ->
            let v = elem_load l2.lelem l2.llext data.(xi) in
            ri.(l2.ldst) <- (if l2.lsx then Eval.sext32 v else v)
        | FArr d -> rf.(l2.ldst) <- d.(xi)
        | RArr d ->
            let v = Int64.of_int d.(xi) in
            ri.(l2.ldst) <- (if l2.lsx then Eval.sext32 v else v));
        pc := !pc + 2
    | PLoadSxLoadBr { l1; w1; cs; sr; wsr; f1; cl; l2; w2; cb; sbl; sbr; b }
      ->
        let cell1 = arr_cell st ri.(l1.larr) in
        let k1 = checked_index st ri.(l1.lidx) (cell_len cell1) in
        let u1 =
          match cell1 with
          | IArr { data; _ } ->
              let v = elem_load l1.lelem l1.llext data.(k1) in
              let v = if l1.lsx then Eval.sext32 v else v in
              if w1 then ri.(l1.ldst) <- v;
              v
          | FArr d ->
              if w1 then rf.(l1.ldst) <- d.(k1);
              ri.(l1.ldst)
          | RArr d ->
              let v = Int64.of_int d.(k1) in
              let v = if l1.lsx then Eval.sext32 v else v in
              if w1 then ri.(l1.ldst) <- v;
              v
        in
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + cs;
        st.sext32 <- st.sext32 + 1;
        let xi = sx32 (if f1 then u1 else ri.(sr)) in
        if wsr then ri.(sr) <- Int64.of_int xi;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + cl;
        let cell2 = arr_cell st ri.(l2.larr) in
        if xi < 0 || xi >= cell_len cell2 then
          raise (Trap "array-index-out-of-bounds");
        let u2 =
          match cell2 with
          | IArr { data; _ } ->
              let v = elem_load l2.lelem l2.llext data.(xi) in
              let v = if l2.lsx then Eval.sext32 v else v in
              if w2 then ri.(l2.ldst) <- v;
              v
          | FArr d ->
              if w2 then rf.(l2.ldst) <- d.(xi);
              ri.(l2.ldst)
          | RArr d ->
              let v = Int64.of_int d.(xi) in
              let v = if l2.lsx then Eval.sext32 v else v in
              if w2 then ri.(l2.ldst) <- v;
              v
        in
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + cb;
        let xv = Int64.of_int xi in
        let lv =
          match sbl with 1 -> u1 | 2 -> xv | 3 -> u2 | _ -> ri.(b.bl)
        in
        let rv =
          match sbr with 1 -> u1 | 2 -> xv | 3 -> u2 | _ -> ri.(b.brx)
        in
        let taken =
          if b.bw64 then holds b.bcond (Int64.compare lv rv)
          else iholds b.bcond (sx32 lv) (sx32 rv)
        in
        let t_off = if taken then b.bso else b.bno in
        let t_bid = if taken then b.bsob else b.bnob in
        (match st.profile with
        | Some prof -> Profile.record prof p.fname ~src:b.bsrc ~dst:t_bid
        | None -> ());
        if t_off >= 0 then pc := t_off
        else begin
          ignore (Cfg.block p.src t_bid);
          assert false
        end
    | PSxLoadBin { sr; wsr; cl; ld; w1; hb; a; s2l; s2r; xw } ->
        st.sext32 <- st.sext32 + 1;
        let xi = sx32 ri.(sr) in
        if wsr then ri.(sr) <- Int64.of_int xi;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + cl;
        let cell = arr_cell st ri.(ld.larr) in
        if xi < 0 || xi >= cell_len cell then
          raise (Trap "array-index-out-of-bounds");
        let u1 =
          match cell with
          | IArr { data; _ } ->
              let v = elem_load ld.lelem ld.llext data.(xi) in
              let v = if ld.lsx then Eval.sext32 v else v in
              if w1 then ri.(ld.ldst) <- v;
              v
          | FArr d ->
              if w1 then rf.(ld.ldst) <- d.(xi);
              ri.(ld.ldst)
          | RArr d ->
              let v = Int64.of_int d.(xi) in
              let v = if ld.lsx then Eval.sext32 v else v in
              if w1 then ri.(ld.ldst) <- v;
              v
        in
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + hb;
        if a.wd1 then ri.(a.d1) <- a.v;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + a.c2;
        let xv = Int64.of_int xi in
        let lv =
          match s2l with 1 -> u1 | 2 -> xv | 4 -> a.v | _ -> ri.(a.l)
        in
        let rv =
          match s2r with 1 -> u1 | 2 -> xv | 4 -> a.v | _ -> ri.(a.r)
        in
        let bv =
          bin_eval st.canonical a.k a.kw lv rv
        in
        if xw then ri.(a.dst) <- (if a.ext then Eval.sext32 bv else bv);
        pc := !pc + 3
    | PSxLoadBinLoadBr
        { sr; wsr; cl; ld; w1; hb; a; s2l; s2r; xw; hl; ld2; w2; si; cb;
          sbl; sbr; b } ->
        st.sext32 <- st.sext32 + 1;
        let xi = sx32 ri.(sr) in
        if wsr then ri.(sr) <- Int64.of_int xi;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + cl;
        let cell = arr_cell st ri.(ld.larr) in
        if xi < 0 || xi >= cell_len cell then
          raise (Trap "array-index-out-of-bounds");
        let u1 =
          match cell with
          | IArr { data; _ } ->
              let v = elem_load ld.lelem ld.llext data.(xi) in
              let v = if ld.lsx then Eval.sext32 v else v in
              if w1 then ri.(ld.ldst) <- v;
              v
          | FArr d ->
              if w1 then rf.(ld.ldst) <- d.(xi);
              ri.(ld.ldst)
          | RArr d ->
              let v = Int64.of_int d.(xi) in
              let v = if ld.lsx then Eval.sext32 v else v in
              if w1 then ri.(ld.ldst) <- v;
              v
        in
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + hb;
        if a.wd1 then ri.(a.d1) <- a.v;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + a.c2;
        let xv = Int64.of_int xi in
        let lv =
          match s2l with 1 -> u1 | 2 -> xv | 4 -> a.v | _ -> ri.(a.l)
        in
        let rv =
          match s2r with 1 -> u1 | 2 -> xv | 4 -> a.v | _ -> ri.(a.r)
        in
        let bv =
          bin_eval st.canonical a.k a.kw lv rv
        in
        let v2 = if a.ext then Eval.sext32 bv else bv in
        if xw then ri.(a.dst) <- v2;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + hl;
        let cell2 = arr_cell st ri.(ld2.larr) in
        let ki =
          match si with
          | 1 -> u1
          | 2 -> xv
          | 3 -> v2
          | 4 -> a.v
          | _ -> ri.(ld2.lidx)
        in
        let k2 = checked_index st ki (cell_len cell2) in
        let u2 =
          match cell2 with
          | IArr { data; _ } ->
              let v = elem_load ld2.lelem ld2.llext data.(k2) in
              let v = if ld2.lsx then Eval.sext32 v else v in
              if w2 then ri.(ld2.ldst) <- v;
              v
          | FArr d ->
              if w2 then rf.(ld2.ldst) <- d.(k2);
              ri.(ld2.ldst)
          | RArr d ->
              let v = Int64.of_int d.(k2) in
              let v = if ld2.lsx then Eval.sext32 v else v in
              if w2 then ri.(ld2.ldst) <- v;
              v
        in
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + cb;
        let lv =
          match sbl with
          | 1 -> u1
          | 2 -> xv
          | 3 -> v2
          | 4 -> a.v
          | 5 -> u2
          | _ -> ri.(b.bl)
        in
        let rv =
          match sbr with
          | 1 -> u1
          | 2 -> xv
          | 3 -> v2
          | 4 -> a.v
          | 5 -> u2
          | _ -> ri.(b.brx)
        in
        let taken =
          if b.bw64 then holds b.bcond (Int64.compare lv rv)
          else iholds b.bcond (sx32 lv) (sx32 rv)
        in
        let t_off = if taken then b.bso else b.bno in
        let t_bid = if taken then b.bsob else b.bnob in
        (match st.profile with
        | Some prof -> Profile.record prof p.fname ~src:b.bsrc ~dst:t_bid
        | None -> ());
        if t_off >= 0 then pc := t_off
        else begin
          ignore (Cfg.block p.src t_bid);
          assert false
        end
    | PLoad2Store2 { l1; w1; c2; l2; w2; c3; s1; z1; zr1; c4; s2; z2; zr2 }
      ->
        let cell1 = arr_cell st ri.(l1.larr) in
        let k1 = checked_index st ri.(l1.lidx) (cell_len cell1) in
        let u1 =
          match cell1 with
          | IArr { data; _ } ->
              let v = elem_load l1.lelem l1.llext data.(k1) in
              let v = if l1.lsx then Eval.sext32 v else v in
              if w1 then ri.(l1.ldst) <- v;
              v
          | FArr d ->
              if w1 then rf.(l1.ldst) <- d.(k1);
              ri.(l1.ldst)
          | RArr d ->
              let v = Int64.of_int d.(k1) in
              let v = if l1.lsx then Eval.sext32 v else v in
              if w1 then ri.(l1.ldst) <- v;
              v
        in
        (* [raw*]/[rk*]: the undecoded cell word and whether the cell
           was an int array — a same-element store of a loaded value
           reuses the word, skipping [elem_store]'s re-encode; [fv*]/
           [fk*] are the float-side equivalents for float cells *)
        let raw1 = match cell1 with IArr { data; _ } -> data.(k1) | _ -> u1 in
        let rk1 = match cell1 with IArr _ -> true | _ -> false in
        let fv1 = match cell1 with FArr d -> d.(k1) | _ -> 0.0 in
        let fk1 = match cell1 with FArr _ -> true | _ -> false in
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + c2;
        let cell2 = arr_cell st ri.(l2.larr) in
        let k2 = checked_index st ri.(l2.lidx) (cell_len cell2) in
        let u2 =
          match cell2 with
          | IArr { data; _ } ->
              let v = elem_load l2.lelem l2.llext data.(k2) in
              let v = if l2.lsx then Eval.sext32 v else v in
              if w2 then ri.(l2.ldst) <- v;
              v
          | FArr d ->
              if w2 then rf.(l2.ldst) <- d.(k2);
              ri.(l2.ldst)
          | RArr d ->
              let v = Int64.of_int d.(k2) in
              let v = if l2.lsx then Eval.sext32 v else v in
              if w2 then ri.(l2.ldst) <- v;
              v
        in
        let raw2 = match cell2 with IArr { data; _ } -> data.(k2) | _ -> u2 in
        let rk2 = match cell2 with IArr _ -> true | _ -> false in
        let fv2 = match cell2 with FArr d -> d.(k2) | _ -> 0.0 in
        let fk2 = match cell2 with FArr _ -> true | _ -> false in
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + c3;
        (let cells = arr_cell st ri.(s1.sarr) in
         let j = checked_index st ri.(s1.sidx) (cell_len cells) in
         match cells with
         | IArr { data; _ } ->
             if zr1 && (if z1 = 1 then rk1 else rk2) then
               data.(j) <- (if z1 = 1 then raw1 else raw2)
             else
               data.(j) <-
                 elem_store s1.selem
                   (match z1 with 1 -> u1 | 2 -> u2 | _ -> ri.(s1.ssrc))
         | FArr d ->
             d.(j) <-
               (match z1 with
               | 1 when fk1 -> fv1
               | 2 when fk2 -> fv2
               | _ -> rf.(s1.ssrc))
         | RArr d ->
             d.(j) <-
               Int64.to_int
                 (match z1 with 1 -> u1 | 2 -> u2 | _ -> ri.(s1.ssrc)));
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + c4;
        (let cells = arr_cell st ri.(s2.sarr) in
         let j = checked_index st ri.(s2.sidx) (cell_len cells) in
         match cells with
         | IArr { data; _ } ->
             if zr2 && (if z2 = 1 then rk1 else rk2) then
               data.(j) <- (if z2 = 1 then raw1 else raw2)
             else
               data.(j) <-
                 elem_store s2.selem
                   (match z2 with 1 -> u1 | 2 -> u2 | _ -> ri.(s2.ssrc))
         | FArr d ->
             d.(j) <-
               (match z2 with
               | 1 when fk1 -> fv1
               | 2 when fk2 -> fv2
               | _ -> rf.(s2.ssrc))
         | RArr d ->
             d.(j) <-
               Int64.to_int
                 (match z2 with 1 -> u1 | 2 -> u2 | _ -> ri.(s2.ssrc)));
        pc := !pc + 3
    | PSwapJmp
        { l1; w1; c2; l2; w2; c3; s1; z1; zr1; c4; s2; z2; zr2; hm; smv; m }
      ->
        let cell1 = arr_cell st ri.(l1.larr) in
        let k1 = checked_index st ri.(l1.lidx) (cell_len cell1) in
        let u1 =
          match cell1 with
          | IArr { data; _ } ->
              let v = elem_load l1.lelem l1.llext data.(k1) in
              let v = if l1.lsx then Eval.sext32 v else v in
              if w1 then ri.(l1.ldst) <- v;
              v
          | FArr d ->
              if w1 then rf.(l1.ldst) <- d.(k1);
              ri.(l1.ldst)
          | RArr d ->
              let v = Int64.of_int d.(k1) in
              let v = if l1.lsx then Eval.sext32 v else v in
              if w1 then ri.(l1.ldst) <- v;
              v
        in
        let raw1 = match cell1 with IArr { data; _ } -> data.(k1) | _ -> u1 in
        let rk1 = match cell1 with IArr _ -> true | _ -> false in
        let fv1 = match cell1 with FArr d -> d.(k1) | _ -> 0.0 in
        let fk1 = match cell1 with FArr _ -> true | _ -> false in
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + c2;
        let cell2 = arr_cell st ri.(l2.larr) in
        let k2 = checked_index st ri.(l2.lidx) (cell_len cell2) in
        let u2 =
          match cell2 with
          | IArr { data; _ } ->
              let v = elem_load l2.lelem l2.llext data.(k2) in
              let v = if l2.lsx then Eval.sext32 v else v in
              if w2 then ri.(l2.ldst) <- v;
              v
          | FArr d ->
              if w2 then rf.(l2.ldst) <- d.(k2);
              ri.(l2.ldst)
          | RArr d ->
              let v = Int64.of_int d.(k2) in
              let v = if l2.lsx then Eval.sext32 v else v in
              if w2 then ri.(l2.ldst) <- v;
              v
        in
        let raw2 = match cell2 with IArr { data; _ } -> data.(k2) | _ -> u2 in
        let rk2 = match cell2 with IArr _ -> true | _ -> false in
        let fv2 = match cell2 with FArr d -> d.(k2) | _ -> 0.0 in
        let fk2 = match cell2 with FArr _ -> true | _ -> false in
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + c3;
        (let cells = arr_cell st ri.(s1.sarr) in
         let j = checked_index st ri.(s1.sidx) (cell_len cells) in
         match cells with
         | IArr { data; _ } ->
             if zr1 && (if z1 = 1 then rk1 else rk2) then
               data.(j) <- (if z1 = 1 then raw1 else raw2)
             else
               data.(j) <-
                 elem_store s1.selem
                   (match z1 with 1 -> u1 | 2 -> u2 | _ -> ri.(s1.ssrc))
         | FArr d ->
             d.(j) <-
               (match z1 with
               | 1 when fk1 -> fv1
               | 2 when fk2 -> fv2
               | _ -> rf.(s1.ssrc))
         | RArr d ->
             d.(j) <-
               Int64.to_int
                 (match z1 with 1 -> u1 | 2 -> u2 | _ -> ri.(s1.ssrc)));
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + c4;
        (let cells = arr_cell st ri.(s2.sarr) in
         let j = checked_index st ri.(s2.sidx) (cell_len cells) in
         match cells with
         | IArr { data; _ } ->
             if zr2 && (if z2 = 1 then rk1 else rk2) then
               data.(j) <- (if z2 = 1 then raw1 else raw2)
             else
               data.(j) <-
                 elem_store s2.selem
                   (match z2 with 1 -> u1 | 2 -> u2 | _ -> ri.(s2.ssrc))
         | FArr d ->
             d.(j) <-
               (match z2 with
               | 1 when fk1 -> fv1
               | 2 when fk2 -> fv2
               | _ -> rf.(s2.ssrc))
         | RArr d ->
             d.(j) <-
               Int64.to_int
                 (match z2 with 1 -> u1 | 2 -> u2 | _ -> ri.(s2.ssrc)));
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + hm;
        if m.mw then begin
          let v = match smv with 1 -> u1 | 2 -> u2 | _ -> ri.(m.msrc) in
          ri.(m.mdst) <- (if m.mext then Eval.sext32 v else v)
        end;
        st.executed <- st.executed + 1;
        if st.executed > fuel then raise (Trap "fuel-exhausted");
        st.cycles <- st.cycles + m.mc2;
        (match st.profile with
        | Some prof -> Profile.record prof p.fname ~src:m.mj.jsrc ~dst:m.mj.jdst
        | None -> ());
        if m.mj.joff >= 0 then pc := m.mj.joff
        else begin
          ignore (Cfg.block p.src m.mj.jdst);
          assert false
        end
  done

(** Call [fn], binding [argv] (packed caller registers) to the callee's
    parameters positionally. Extra arguments are ignored; a missing or
    kind-mismatched argument traps ["bad-call-arity"]. Parameter binding
    writes the raw caller value — the canonical machine does not re-extend
    at binding time (the structural engine's [List.iteri] does not either). *)
and call_fn st fn fid (caller_ri : int64 array) (caller_rf : float array)
    (argv : int array) : unit =
  st.depth <- st.depth + 1;
  if st.depth > max_depth then raise (Trap "stack-overflow");
  let p = resolve st fn fid in
  let n = max p.nregs 1 in
  let d = st.depth in
  let ri =
    let cur = st.fpool_i.(d) in
    if Array.length cur >= n then begin
      Array.fill cur 0 n 0L;
      cur
    end
    else begin
      let a = Array.make n 0L in
      st.fpool_i.(d) <- a;
      a
    end
  in
  let rf =
    let cur = st.fpool_f.(d) in
    if Array.length cur >= n then begin
      Array.fill cur 0 n 0.0;
      cur
    end
    else begin
      let a = Array.make n 0.0 in
      st.fpool_f.(d) <- a;
      a
    end
  in
  let params = p.params in
  let na = Array.length argv in
  for k = 0 to Array.length params - 1 do
    let pk = params.(k) in
    if k >= na then raise (Trap "bad-call-arity");
    let a = argv.(k) in
    if pk land 1 <> a land 1 then raise (Trap "bad-call-arity");
    if pk land 1 = 1 then rf.(pk lsr 1) <- caller_rf.(a lsr 1)
    else ri.(pk lsr 1) <- caller_ri.(a lsr 1)
  done;
  exec st p ri rf;
  st.depth <- st.depth - 1

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let run ?(mode = `Faithful) ?(fuel = 2_000_000_000L) ?(count_cycles = true)
    ?profile ?fuse (prog : Prog.t) : outcome =
  let fuse = match fuse with Some s -> s | None -> Fuse.of_env () in
  let fuel_i =
    if Int64.compare fuel (Int64.of_int max_int) >= 0 then max_int
    else Int64.to_int fuel
  in
  let st =
    {
      prog;
      canonical = mode = `Canonical;
      fuse;
      depth = 0;
      heap = Vec.create ~dummy:None ();
      gvi = Array.make (gslot_count ()) 0L;
      gvf = Array.make (gslot_count ()) 0.0;
      fpool_i = Array.make (max_depth + 1) [||];
      fpool_f = Array.make (max_depth + 1) [||];
      buf = Buffer.create 256;
      checksum = 0L;
      executed = 0;
      sext32 = 0;
      sext_sub = 0;
      zext32 = 0;
      zext_sub = 0;
      cycles = 0;
      fuel = fuel_i;
      profile;
      fcache = Array.make (fslot_count ()) None;
      ret_kind = 0;
      ret_i = 0L;
      ret_f = 0.0;
    }
  in
  let trap =
    match call_fn st prog.Prog.main (fslot prog.Prog.main) [||] [||] [||] with
    | () -> None
    | exception Trap t -> Some t
  in
  let ret =
    if trap <> None then None
    else
      match st.ret_kind with
      | 1 -> Some st.ret_i
      | 2 -> Some (Int64.bits_of_float st.ret_f)
      | _ -> None
  in
  {
    output = Buffer.contents st.buf;
    checksum = st.checksum;
    trap;
    ret;
    executed = Int64.of_int st.executed;
    sext32 = Int64.of_int st.sext32;
    sext_sub = Int64.of_int st.sext_sub;
    zext32 = Int64.of_int st.zext32;
    zext_sub = Int64.of_int st.zext_sub;
    cycles = (if count_cycles then Int64.of_int st.cycles else 0L);
  }
