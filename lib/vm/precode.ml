(** Pre-decoded execution engine for the 64-bit machine.

    The structural interpreter ({!Interp}) re-traverses the linked CFG on
    every run: each tick pattern-matches a boxed {!Sxe_ir.Instr.op} record,
    chases the block list, consults the mode/trace/watch/profile
    configuration, and pays an [Int64] box per counter bump. This module
    flattens each {!Sxe_ir.Cfg.func} once into arrays of decoded
    instructions — fields pulled out of the [op] records, jump targets
    resolved to flat code offsets, the canonical-mode re-extension decision
    and the static cost-model weights baked in at decode time — and
    executes them with a tight program-counter loop over native-int
    counters.

    Per-run decisions are hoisted out of the per-instruction path:
    - [mode] selects which decoded image to use (the two modes decode to
      different [ext] flags, cached separately);
    - [count_cycles] always accumulates (a native-int add) and the report
      is zeroed afterwards when disabled;
    - [trace]/[watch] are not supported here — {!Interp.run} routes runs
      with hooks to the structural engine;
    - [profile] is consulted only at control-flow ops, never per
      instruction.

    Decoded code is cached on the function itself (the {!Sxe_ir.Cfg}
    [vm_cache] slot) keyed by the function's generation counter, so the
    12-variant evaluation matrix, profile collection and reference runs
    re-decode only after the optimizer actually mutates a function.

    Observable behaviour — output, checksum, trap, return value {e and}
    the [executed]/[sext32]/[sext_sub]/[cycles] counters — is bit-identical
    to the structural engine; the differential-fuzz oracle cross-checks
    the two engines on every generated case. *)

open Sxe_util
open Sxe_ir
open Sxe_ir.Types

exception Trap of string

type cell =
  | IArr of { elem : aelem; data : int64 array }
  | FArr of float array
  | RArr of int array

type outcome = {
  output : string;
  checksum : int64;
  trap : string option;
  ret : int64 option;
  executed : int64;
  sext32 : int64;
  sext_sub : int64;
  cycles : int64;
}

let max_alloc = 1 lsl 26
let max_depth = 2_500

let elem_load elem lext (raw : int64) =
  match (elem, lext) with
  | AI8, LZero -> Eval.zext8 raw
  | AI8, LSign -> Eval.sext8 raw
  | AI16, LZero -> Eval.zext16 raw
  | AI16, LSign -> Eval.sext16 raw
  | AI32, LZero -> Eval.zext32 raw
  | AI32, LSign -> Eval.sext32 raw
  | (AI64 | AF64 | ARef), _ -> raw

let elem_store elem (v : int64) =
  match elem with
  | AI8 -> Eval.zext8 v
  | AI16 -> Eval.zext16 v
  | AI32 -> Eval.zext32 v
  | AI64 | AF64 | ARef -> v

let checksum_mix c v = Int64.add (Int64.mul c 0x100000001b3L) v

let builtin_names =
  [ "print_int"; "print_long"; "print_double"; "checksum"; "checksum_double" ]

(* ------------------------------------------------------------------ *)
(* Decoded instructions                                                *)
(* ------------------------------------------------------------------ *)

(** One decoded instruction. [ext] marks destinations that the canonical
    "32-bit machine" re-extends ([I32] destination registers); faithful
    decodes always carry [ext = false]. Register fields are plain array
    indices; jump targets are flat code offsets ([-1] for a target outside
    the function, which reproduces the structural engine's fetch failure
    lazily). *)
type pi =
  | PNop  (** [JustExt]: ticks, costs 0, no effect *)
  | PConstI of { dst : int; v : int64 }  (** canonical sext pre-applied *)
  | PConstF of { dst : int; v : float }
  | PMovI of { dst : int; src : int; ext : bool }
  | PMovF of { dst : int; src : int }
  | PNegI of { dst : int; src : int; ext : bool }
  | PNotI of { dst : int; src : int; ext : bool }
  | PAdd of { dst : int; l : int; r : int; ext : bool }
  | PSub of { dst : int; l : int; r : int; ext : bool }
  | PMul of { dst : int; l : int; r : int; ext : bool }
  | PAnd of { dst : int; l : int; r : int; ext : bool }
  | POr of { dst : int; l : int; r : int; ext : bool }
  | PXor of { dst : int; l : int; r : int; ext : bool }
  | PShl of { dst : int; l : int; r : int; w64 : bool; ext : bool }
  | PAShr of { dst : int; l : int; r : int; w64 : bool; ext : bool }
  | PLShr of { dst : int; l : int; r : int; w64 : bool; ext : bool }
  | PDiv of { dst : int; l : int; r : int; w64 : bool; ext : bool }
  | PRem of { dst : int; l : int; r : int; w64 : bool; ext : bool }
  | PCmp of { dst : int; cond : cond; w64 : bool; l : int; r : int }
  | PSext32 of { r : int }
  | PSextSub of { r : int; sh : int }  (** shift-in/out amount: 56, 48 or 0 *)
  | PZext of { r : int; mask : int64 }
  | PFAdd of { dst : int; l : int; r : int }
  | PFSub of { dst : int; l : int; r : int }
  | PFMul of { dst : int; l : int; r : int }
  | PFDiv of { dst : int; l : int; r : int }
  | PFNeg of { dst : int; src : int }
  | PFCmp of { dst : int; cond : cond; l : int; r : int }
  | PItoF of { dst : int; src : int }  (** I2D and L2D: full-register convert *)
  | PD2I of { dst : int; src : int }
  | PD2L of { dst : int; src : int; ext : bool }
  | PNewArr of { dst : int; elem : aelem; len : int; ext : bool }
  | PArrLoad of { dst : int; arr : int; idx : int; elem : aelem; lext : lext; ext : bool }
  | PArrStore of { arr : int; idx : int; src : int; elem : aelem }
  | PArrLen of { dst : int; arr : int }
  | PGLoadF of { dst : int; sym : string }
  | PGLoadI32 of { dst : int; sym : string; sign : bool; ext : bool }
  | PGLoadI of { dst : int; sym : string; ext : bool }
  | PGStoreF of { sym : string; src : int }
  | PGStoreI32 of { sym : string; src : int }
  | PGStoreI of { sym : string; src : int }
  | PPrintI of { r : int; post_trap : bool }
      (** [post_trap]: the call named a destination; the builtin's effect
          happens, then ["missing-return"] (structural order) *)
  | PPrintF of { r : int; post_trap : bool }
  | PCheckI of { r : int; post_trap : bool }
  | PCheckF of { r : int; post_trap : bool }
  | PTrapOp of { msg : string }  (** statically-doomed op, e.g. bad builtin arity *)
  | PCallUser of { dst : int; expect : int; ext : bool; fn : string; argv : int array }
      (** [argv]/callee params pack [(reg lsl 1) lor is_f64]; [expect]:
          0 = no destination, 1 = int, 2 = float, 3 = always bad-return *)
  | PJmp of { off : int; src_bid : int; dst_bid : int }
  | PBr of {
      cond : cond;
      w64 : bool;
      l : int;
      r : int;
      so : int;
      no : int;
      src_bid : int;
      so_bid : int;
      not_bid : int;
    }
  | PRet0
  | PRetI of { r : int }
  | PRetF of { r : int }

type pfunc = {
  fname : string;
  nregs : int;
  params : int array;  (** packed [(reg lsl 1) lor is_f64], in order *)
  code : pi array;  (** blocks laid out in bid order; empty for 0 blocks *)
  costs : int array;  (** static cycle weight per slot; 0 for [PNewArr] *)
  src : Cfg.func;
}

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let pack_reg (r, ty) = (r lsl 1) lor (match ty with F64 -> 1 | _ -> 0)

let decode ~(canonical : bool) (f : Cfg.func) : pfunc =
  let nregs = Cfg.num_regs f in
  (* the canonical machine re-extends I32 destinations ([Interp]'s
     [set_i]); out-of-range destinations keep [ext = false] so the
     register write itself raises, as the faithful structural engine
     does on malformed IR *)
  let ext dst = canonical && dst >= 0 && dst < nregs && Cfg.reg_ty f dst = I32 in
  let decode_op (op : Instr.op) : pi =
    match op with
    | Instr.Const { dst; ty; v } -> (
        match ty with
        | F64 -> PConstF { dst; v = Int64.float_of_bits v }
        | _ -> PConstI { dst; v = (if ext dst then Eval.sext32 v else v) })
    | Instr.FConst { dst; v } -> PConstF { dst; v }
    | Instr.Mov { dst; src; ty } -> (
        match ty with
        | F64 -> PMovF { dst; src }
        | _ -> PMovI { dst; src; ext = ext dst })
    | Instr.Unop { dst; op; src; w = _ } -> (
        match op with
        | Neg -> PNegI { dst; src; ext = ext dst }
        | Not -> PNotI { dst; src; ext = ext dst })
    | Instr.Binop { dst; op; l; r; w } -> (
        let e = ext dst and w64 = w = W64 in
        match op with
        | Add -> PAdd { dst; l; r; ext = e }
        | Sub -> PSub { dst; l; r; ext = e }
        | Mul -> PMul { dst; l; r; ext = e }
        | And -> PAnd { dst; l; r; ext = e }
        | Or -> POr { dst; l; r; ext = e }
        | Xor -> PXor { dst; l; r; ext = e }
        | Shl -> PShl { dst; l; r; w64; ext = e }
        | AShr -> PAShr { dst; l; r; w64; ext = e }
        | LShr -> PLShr { dst; l; r; w64; ext = e }
        | Div -> PDiv { dst; l; r; w64; ext = e }
        | Rem -> PRem { dst; l; r; w64; ext = e })
    | Instr.Cmp { dst; cond; l; r; w } ->
        (* 0/1 results are their own sign extension: no [ext] needed *)
        PCmp { dst; cond; w64 = w = W64; l; r }
    | Instr.Sext { r; from } -> (
        match from with
        | W32 -> PSext32 { r }
        | W8 -> PSextSub { r; sh = 56 }
        | W16 -> PSextSub { r; sh = 48 }
        | W64 -> PSextSub { r; sh = 0 })
    | Instr.Zext { r; from } ->
        PZext
          {
            r;
            mask =
              (match from with
              | W8 -> 0xFFL
              | W16 -> 0xFFFFL
              | W32 -> 0xFFFF_FFFFL
              | W64 -> -1L);
          }
    | Instr.JustExt _ -> PNop
    | Instr.FBinop { dst; op; l; r } -> (
        match op with
        | FAdd -> PFAdd { dst; l; r }
        | FSub -> PFSub { dst; l; r }
        | FMul -> PFMul { dst; l; r }
        | FDiv -> PFDiv { dst; l; r })
    | Instr.FNeg { dst; src } -> PFNeg { dst; src }
    | Instr.FCmp { dst; cond; l; r } -> PFCmp { dst; cond; l; r }
    | Instr.I2D { dst; src } | Instr.L2D { dst; src } -> PItoF { dst; src }
    | Instr.D2I { dst; src } ->
        (* saturated to int32: arrives sign-extended, no [ext] needed *)
        PD2I { dst; src }
    | Instr.D2L { dst; src } -> PD2L { dst; src; ext = ext dst }
    | Instr.NewArr { dst; elem; len } -> PNewArr { dst; elem; len; ext = ext dst }
    | Instr.ArrLoad { dst; arr; idx; elem; lext } ->
        PArrLoad { dst; arr; idx; elem; lext; ext = ext dst }
    | Instr.ArrStore { arr; idx; src; elem } -> PArrStore { arr; idx; src; elem }
    | Instr.ArrLen { dst; arr } ->
        (* length is in [0, 2^31-1]: already extended *)
        PArrLen { dst; arr }
    | Instr.GLoad { dst; sym; ty; lext } -> (
        match ty with
        | F64 -> PGLoadF { dst; sym }
        | I32 -> PGLoadI32 { dst; sym; sign = lext = LSign; ext = ext dst }
        | _ -> PGLoadI { dst; sym; ext = ext dst })
    | Instr.GStore { sym; src; ty } -> (
        match ty with
        | F64 -> PGStoreF { sym; src }
        | I32 -> PGStoreI32 { sym; src }
        | _ -> PGStoreI { sym; src })
    | Instr.Call { dst; fn; args; ret } ->
        if List.mem fn builtin_names then begin
          (* builtins shadow user functions; arity and argument kinds are
             static, so the mismatch trap is decided here and the op only
             performs (or refuses) the effect at run time *)
          let post_trap = dst <> None in
          match (fn, args) with
          | ("print_int" | "print_long"), [ (r, (I32 | I64 | Ref)) ] ->
              PPrintI { r; post_trap }
          | "print_double", [ (r, F64) ] -> PPrintF { r; post_trap }
          | "checksum", [ (r, (I32 | I64 | Ref)) ] -> PCheckI { r; post_trap }
          | "checksum_double", [ (r, F64) ] -> PCheckF { r; post_trap }
          | _ -> PTrapOp { msg = "bad-builtin-arity" }
        end
        else
          let argv = Array.of_list (List.map pack_reg args) in
          let dst_i, expect, e =
            match (dst, ret) with
            | None, _ -> (-1, 0, false)
            | Some d, Some F64 -> (d, 2, false)
            | Some d, Some (I32 | I64 | Ref) -> (d, 1, ext d)
            | Some d, None -> (d, 3, false)
          in
          PCallUser { dst = dst_i; expect; ext = e; fn; argv }
  in
  let nb = Cfg.num_blocks f in
  let bodies = Array.init nb (fun bid -> Cfg.body (Cfg.block f bid)) in
  let terms = Array.init nb (fun bid -> Cfg.term (Cfg.block f bid)) in
  let block_start = Array.make (max nb 1) 0 in
  let total = ref 0 in
  for bid = 0 to nb - 1 do
    block_start.(bid) <- !total;
    total := !total + List.length bodies.(bid) + 1
  done;
  let code = Array.make !total PNop in
  let costs = Array.make !total 0 in
  (* a target outside the function decodes to offset -1: the jump executes
     normally (tick, charge, profile) and the *fetch* of the missing block
     reproduces the structural engine's failure *)
  let target l = if l >= 0 && l < nb then block_start.(l) else -1 in
  let pos = ref 0 in
  let emit op cost =
    code.(!pos) <- op;
    costs.(!pos) <- cost;
    incr pos
  in
  for bid = 0 to nb - 1 do
    List.iter
      (fun (i : Instr.t) ->
        let cost =
          match i.Instr.op with
          | Instr.NewArr _ -> 0 (* dynamic: charged by the handler *)
          | op -> Cost.of_op op ~alloc_len:0L
        in
        emit (decode_op i.Instr.op) cost)
      bodies.(bid);
    let t = terms.(bid) in
    let tc = Cost.of_term t in
    match t with
    | Instr.Jmp l -> emit (PJmp { off = target l; src_bid = bid; dst_bid = l }) tc
    | Instr.Br { cond; l; r; w; ifso; ifnot } ->
        emit
          (PBr
             {
               cond;
               w64 = w = W64;
               l;
               r;
               so = target ifso;
               no = target ifnot;
               src_bid = bid;
               so_bid = ifso;
               not_bid = ifnot;
             })
          tc
    | Instr.Ret None -> emit PRet0 tc
    | Instr.Ret (Some (r, ty)) ->
        emit (match ty with F64 -> PRetF { r } | _ -> PRetI { r }) tc
  done;
  {
    fname = f.Cfg.name;
    nregs;
    params = Array.of_list (List.map pack_reg f.Cfg.params);
    code;
    costs;
    src = f;
  }

(* ------------------------------------------------------------------ *)
(* The per-function decode cache                                       *)
(* ------------------------------------------------------------------ *)

type entry = {
  mutable eversion : int;
  mutable faithful : pfunc option;
  mutable canonical_p : pfunc option;
}

type Cfg.vm_cache += Cached of entry

(** Decoded code for [f] in the given mode, decoding at most once per
    (generation, mode). Any mutation through the {!Cfg} API bumps the
    generation and drops both images on the next lookup. *)
let get_decoded ~canonical (f : Cfg.func) : pfunc =
  let e =
    match f.Cfg.vm_cache with
    | Some (Cached e) ->
        let v = Cfg.version f in
        if e.eversion <> v then begin
          e.eversion <- v;
          e.faithful <- None;
          e.canonical_p <- None
        end;
        e
    | _ ->
        let e = { eversion = Cfg.version f; faithful = None; canonical_p = None } in
        f.Cfg.vm_cache <- Some (Cached e);
        e
  in
  if canonical then
    match e.canonical_p with
    | Some p -> p
    | None ->
        let p = decode ~canonical:true f in
        e.canonical_p <- Some p;
        p
  else
    match e.faithful with
    | Some p -> p
    | None ->
        let p = decode ~canonical:false f in
        e.faithful <- Some p;
        p

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

type state = {
  prog : Prog.t;
  canonical : bool;
  mutable depth : int;
  heap : cell option Vec.t;
  gi : (string, int64) Hashtbl.t;
  gf : (string, float) Hashtbl.t;
  buf : Buffer.t;
  mutable checksum : int64;
  mutable executed : int;  (** native ints: no box per tick *)
  mutable sext32 : int;
  mutable sext_sub : int;
  mutable cycles : int;
  fuel : int;
  profile : Profile.t option;
  fmap : (string, pfunc) Hashtbl.t;  (** per-run name resolution cache *)
  mutable ret_kind : int;  (** callee result: 0 none, 1 int, 2 float *)
  mutable ret_i : int64;
  mutable ret_f : float;
}

let resolve st fn =
  match Hashtbl.find_opt st.fmap fn with
  | Some p -> p
  | None ->
      (* [find_func] raises [Invalid_argument] for a missing function,
         which escapes the run as a crash — same as the structural engine *)
      let p = get_decoded ~canonical:st.canonical (Prog.find_func st.prog fn) in
      Hashtbl.replace st.fmap fn p;
      p

let arr_cell st h =
  if Int64.equal h 0L then raise (Trap "null-pointer");
  match Vec.get st.heap (Int64.to_int h - 1) with
  | Some c -> c
  | None -> raise (Trap "bad-handle")

let cell_len = function
  | IArr { data; _ } -> Array.length data
  | FArr d -> Array.length d
  | RArr d -> Array.length d

(* bounds check on the sign-extended low 32 bits (IA64 cmp4), then the
   effective address consumes the full register *)
let checked_index st idx_full len =
  let idx32 = Eval.sext32 idx_full in
  if Int64.compare idx32 0L < 0 || Int64.compare idx32 (Int64.of_int len) >= 0 then
    raise (Trap "array-index-out-of-bounds");
  if st.canonical || Int64.equal idx_full idx32 then Int64.to_int idx32
  else raise (Trap "wild-access")

let out st s =
  Buffer.add_string st.buf s;
  Buffer.add_char st.buf '\n'

let rec exec (st : state) (p : pfunc) (ri : int64 array) (rf : float array) : unit =
  let code = p.code and costs = p.costs in
  if Array.length code = 0 then
    (* a function with no blocks: the structural engine fails fetching
       block 0; reproduce its exact exception *)
    ignore (Cfg.block p.src 0);
  let fuel = st.fuel in
  let pc = ref 0 in
  let running = ref true in
  while !running do
    let cpc = !pc in
    let op = Array.unsafe_get code cpc in
    (* tick -> fuel trap -> charge, in the structural engine's order *)
    st.executed <- st.executed + 1;
    if st.executed > fuel then raise (Trap "fuel-exhausted");
    st.cycles <- st.cycles + Array.unsafe_get costs cpc;
    incr pc;
    match op with
    | PNop -> ()
    | PConstI { dst; v } -> ri.(dst) <- v
    | PConstF { dst; v } -> rf.(dst) <- v
    | PMovI { dst; src; ext } ->
        let v = ri.(src) in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PMovF { dst; src } -> rf.(dst) <- rf.(src)
    | PNegI { dst; src; ext } ->
        let v = Int64.neg ri.(src) in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PNotI { dst; src; ext } ->
        let v = Int64.lognot ri.(src) in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PAdd { dst; l; r; ext } ->
        let v = Int64.add ri.(l) ri.(r) in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PSub { dst; l; r; ext } ->
        let v = Int64.sub ri.(l) ri.(r) in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PMul { dst; l; r; ext } ->
        let v = Int64.mul ri.(l) ri.(r) in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PAnd { dst; l; r; ext } ->
        let v = Int64.logand ri.(l) ri.(r) in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | POr { dst; l; r; ext } ->
        let v = Int64.logor ri.(l) ri.(r) in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PXor { dst; l; r; ext } ->
        let v = Int64.logxor ri.(l) ri.(r) in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PShl { dst; l; r; w64; ext } ->
        let amt = Int64.to_int (Int64.logand ri.(r) (if w64 then 63L else 31L)) in
        let v = Int64.shift_left ri.(l) amt in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PAShr { dst; l; r; w64; ext } ->
        let amt = Int64.to_int (Int64.logand ri.(r) (if w64 then 63L else 31L)) in
        let v = Int64.shift_right ri.(l) amt in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PLShr { dst; l; r; w64; ext } ->
        let amt = Int64.to_int (Int64.logand ri.(r) (if w64 then 63L else 31L)) in
        let v =
          if w64 then Int64.shift_right_logical ri.(l) amt
          else Int64.shift_right_logical (Eval.zext32 ri.(l)) amt
        in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PDiv { dst; l; r; w64; ext } ->
        let rv = ri.(r) in
        let zero =
          if w64 then Int64.equal rv 0L else Int64.equal (Eval.low32 rv) 0L
        in
        if zero then raise (Trap "division-by-zero");
        let v =
          if Int64.equal rv (-1L) then Int64.neg ri.(l) else Int64.div ri.(l) rv
        in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PRem { dst; l; r; w64; ext } ->
        let rv = ri.(r) in
        let zero =
          if w64 then Int64.equal rv 0L else Int64.equal (Eval.low32 rv) 0L
        in
        if zero then raise (Trap "division-by-zero");
        let v = if Int64.equal rv (-1L) then 0L else Int64.rem ri.(l) rv in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PCmp { dst; cond; w64; l; r } ->
        let lv = ri.(l) and rv = ri.(r) in
        let lv, rv = if w64 then (lv, rv) else (Eval.sext32 lv, Eval.sext32 rv) in
        let c = Int64.compare lv rv in
        let b =
          match cond with
          | Eq -> c = 0
          | Ne -> c <> 0
          | Lt -> c < 0
          | Le -> c <= 0
          | Gt -> c > 0
          | Ge -> c >= 0
        in
        ri.(dst) <- (if b then 1L else 0L)
    | PSext32 { r } ->
        st.sext32 <- st.sext32 + 1;
        ri.(r) <- Eval.sext32 ri.(r)
    | PSextSub { r; sh } ->
        st.sext_sub <- st.sext_sub + 1;
        ri.(r) <- Int64.shift_right (Int64.shift_left ri.(r) sh) sh
    | PZext { r; mask } -> ri.(r) <- Int64.logand ri.(r) mask
    | PFAdd { dst; l; r } -> rf.(dst) <- rf.(l) +. rf.(r)
    | PFSub { dst; l; r } -> rf.(dst) <- rf.(l) -. rf.(r)
    | PFMul { dst; l; r } -> rf.(dst) <- rf.(l) *. rf.(r)
    | PFDiv { dst; l; r } -> rf.(dst) <- rf.(l) /. rf.(r)
    | PFNeg { dst; src } -> rf.(dst) <- -.rf.(src)
    | PFCmp { dst; cond; l; r } ->
        ri.(dst) <- (if Eval.fcmp cond rf.(l) rf.(r) then 1L else 0L)
    | PItoF { dst; src } -> rf.(dst) <- Int64.to_float ri.(src)
    | PD2I { dst; src } -> ri.(dst) <- Eval.d2i rf.(src)
    | PD2L { dst; src; ext } ->
        let v = Eval.d2l rf.(src) in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PNewArr { dst; elem; len; ext } ->
        let full = ri.(len) in
        let len32 = Eval.sext32 full in
        (* dynamic charge (the static cost slot is 0), before the traps,
           as the structural engine charges before executing *)
        st.cycles <- st.cycles + Cost.alloc_cost ~alloc_len:len32;
        if Int64.compare len32 0L < 0 then raise (Trap "negative-array-size");
        if (not st.canonical) && not (Int64.equal full len32) then
          raise (Trap "wild-access");
        let n = Int64.to_int len32 in
        if n > max_alloc then raise (Trap "allocation-too-large");
        let cell =
          match elem with
          | AF64 -> FArr (Array.make n 0.0)
          | ARef -> RArr (Array.make n 0)
          | e -> IArr { elem = e; data = Array.make n 0L }
        in
        let h = Vec.push st.heap (Some cell) in
        let v = Int64.of_int (h + 1) in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PArrLoad { dst; arr; idx; elem; lext; ext } -> (
        let cell = arr_cell st ri.(arr) in
        let k = checked_index st ri.(idx) (cell_len cell) in
        match cell with
        | IArr { data; _ } ->
            let v = elem_load elem lext data.(k) in
            ri.(dst) <- (if ext then Eval.sext32 v else v)
        | FArr d -> rf.(dst) <- d.(k)
        | RArr d ->
            let v = Int64.of_int d.(k) in
            ri.(dst) <- (if ext then Eval.sext32 v else v))
    | PArrStore { arr; idx; src; elem } -> (
        let cell = arr_cell st ri.(arr) in
        let k = checked_index st ri.(idx) (cell_len cell) in
        match cell with
        | IArr { data; _ } -> data.(k) <- elem_store elem ri.(src)
        | FArr d -> d.(k) <- rf.(src)
        | RArr d -> d.(k) <- Int64.to_int ri.(src))
    | PArrLen { dst; arr } ->
        ri.(dst) <- Int64.of_int (cell_len (arr_cell st ri.(arr)))
    | PGLoadF { dst; sym } ->
        rf.(dst) <- (match Hashtbl.find_opt st.gf sym with Some v -> v | None -> 0.0)
    | PGLoadI32 { dst; sym; sign; ext } ->
        let cell =
          match Hashtbl.find_opt st.gi sym with Some v -> v | None -> 0L
        in
        let v = if sign then Eval.sext32 cell else Eval.zext32 cell in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PGLoadI { dst; sym; ext } ->
        let v = match Hashtbl.find_opt st.gi sym with Some v -> v | None -> 0L in
        ri.(dst) <- (if ext then Eval.sext32 v else v)
    | PGStoreF { sym; src } -> Hashtbl.replace st.gf sym rf.(src)
    | PGStoreI32 { sym; src } -> Hashtbl.replace st.gi sym (Eval.zext32 ri.(src))
    | PGStoreI { sym; src } -> Hashtbl.replace st.gi sym ri.(src)
    | PPrintI { r; post_trap } ->
        out st (Int64.to_string ri.(r));
        if post_trap then raise (Trap "missing-return")
    | PPrintF { r; post_trap } ->
        out st (Printf.sprintf "%.6g" rf.(r));
        if post_trap then raise (Trap "missing-return")
    | PCheckI { r; post_trap } ->
        st.checksum <- checksum_mix st.checksum ri.(r);
        if post_trap then raise (Trap "missing-return")
    | PCheckF { r; post_trap } ->
        st.checksum <- checksum_mix st.checksum (Int64.bits_of_float rf.(r));
        if post_trap then raise (Trap "missing-return")
    | PTrapOp { msg } -> raise (Trap msg)
    | PCallUser { dst; expect; ext; fn; argv } -> (
        call_fn st fn ri rf argv;
        match expect with
        | 0 -> ()
        | 1 ->
            if st.ret_kind <> 1 then raise (Trap "bad-return");
            ri.(dst) <- (if ext then Eval.sext32 st.ret_i else st.ret_i)
        | 2 ->
            if st.ret_kind <> 2 then raise (Trap "bad-return");
            rf.(dst) <- st.ret_f
        | _ -> raise (Trap "bad-return"))
    | PJmp { off; src_bid; dst_bid } ->
        (match st.profile with
        | Some prof -> Profile.record prof p.fname ~src:src_bid ~dst:dst_bid
        | None -> ());
        if off >= 0 then pc := off
        else begin
          (* target outside the function: the jump executed; the fetch of
             the missing block fails as in the structural engine *)
          ignore (Cfg.block p.src dst_bid);
          assert false
        end
    | PBr { cond; w64; l; r; so; no; src_bid; so_bid; not_bid } ->
        let lv = ri.(l) and rv = ri.(r) in
        let lv, rv = if w64 then (lv, rv) else (Eval.sext32 lv, Eval.sext32 rv) in
        let c = Int64.compare lv rv in
        let taken =
          match cond with
          | Eq -> c = 0
          | Ne -> c <> 0
          | Lt -> c < 0
          | Le -> c <= 0
          | Gt -> c > 0
          | Ge -> c >= 0
        in
        let t_off = if taken then so else no in
        let t_bid = if taken then so_bid else not_bid in
        (match st.profile with
        | Some prof -> Profile.record prof p.fname ~src:src_bid ~dst:t_bid
        | None -> ());
        if t_off >= 0 then pc := t_off
        else begin
          ignore (Cfg.block p.src t_bid);
          assert false
        end
    | PRet0 ->
        st.ret_kind <- 0;
        running := false
    | PRetI { r } ->
        st.ret_kind <- 1;
        st.ret_i <- ri.(r);
        running := false
    | PRetF { r } ->
        st.ret_kind <- 2;
        st.ret_f <- rf.(r);
        running := false
  done

(** Call [fn], binding [argv] (packed caller registers) to the callee's
    parameters positionally. Extra arguments are ignored; a missing or
    kind-mismatched argument traps ["bad-call-arity"]. Parameter binding
    writes the raw caller value — the canonical machine does not re-extend
    at binding time (the structural engine's [List.iteri] does not either). *)
and call_fn st fn (caller_ri : int64 array) (caller_rf : float array)
    (argv : int array) : unit =
  st.depth <- st.depth + 1;
  if st.depth > max_depth then raise (Trap "stack-overflow");
  let p = resolve st fn in
  let ri = Array.make (max p.nregs 1) 0L in
  let rf = Array.make (max p.nregs 1) 0.0 in
  let params = p.params in
  let na = Array.length argv in
  for k = 0 to Array.length params - 1 do
    let pk = params.(k) in
    if k >= na then raise (Trap "bad-call-arity");
    let a = argv.(k) in
    if pk land 1 <> a land 1 then raise (Trap "bad-call-arity");
    if pk land 1 = 1 then rf.(pk lsr 1) <- caller_rf.(a lsr 1)
    else ri.(pk lsr 1) <- caller_ri.(a lsr 1)
  done;
  exec st p ri rf;
  st.depth <- st.depth - 1

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let run ?(mode = `Faithful) ?(fuel = 2_000_000_000L) ?(count_cycles = true)
    ?profile (prog : Prog.t) : outcome =
  let fuel_i =
    if Int64.compare fuel (Int64.of_int max_int) >= 0 then max_int
    else Int64.to_int fuel
  in
  let st =
    {
      prog;
      canonical = mode = `Canonical;
      depth = 0;
      heap = Vec.create ~dummy:None ();
      gi = Hashtbl.create 16;
      gf = Hashtbl.create 16;
      buf = Buffer.create 256;
      checksum = 0L;
      executed = 0;
      sext32 = 0;
      sext_sub = 0;
      cycles = 0;
      fuel = fuel_i;
      profile;
      fmap = Hashtbl.create 16;
      ret_kind = 0;
      ret_i = 0L;
      ret_f = 0.0;
    }
  in
  let trap =
    match call_fn st prog.Prog.main [||] [||] [||] with
    | () -> None
    | exception Trap t -> Some t
  in
  let ret =
    if trap <> None then None
    else
      match st.ret_kind with
      | 1 -> Some st.ret_i
      | 2 -> Some (Int64.bits_of_float st.ret_f)
      | _ -> None
  in
  {
    output = Buffer.contents st.buf;
    checksum = st.checksum;
    trap;
    ret;
    executed = Int64.of_int st.executed;
    sext32 = Int64.of_int st.sext32;
    sext_sub = Int64.of_int st.sext_sub;
    cycles = (if count_cycles then Int64.of_int st.cycles else 0L);
  }
