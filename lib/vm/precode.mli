(** Pre-decoded execution engine.

    Flattens each function into arrays of decoded instructions (fields
    pulled out of the IR records, jump targets resolved to flat offsets,
    canonical-mode re-extension and static costs baked in) and executes
    them with a tight program-counter loop over native-int counters.
    Decoded code is cached per function, keyed by the {!Sxe_ir.Cfg}
    generation counter, and per mode.

    Observable behaviour — output, checksum, trap, return value and the
    dynamic counters — is bit-identical to the structural {!Interp}
    engine. [trace]/[watch] hooks are not supported here; {!Interp.run}
    routes runs that use them to the structural engine. See [docs/VM.md]
    for the format and the invalidation rules. *)

exception Trap of string

(** Heap cells, shared with the structural engine. *)
type cell =
  | IArr of { elem : Sxe_ir.Types.aelem; data : int64 array }
  | FArr of float array
  | RArr of int array

type outcome = {
  output : string;
  checksum : int64;
  trap : string option;
  ret : int64 option;
  executed : int64;
  sext32 : int64;
  sext_sub : int64;
  zext32 : int64;
  zext_sub : int64;
  cycles : int64;
}

val max_alloc : int
val max_depth : int

val builtin_names : string list

val elem_load : Sxe_ir.Types.aelem -> Sxe_ir.Types.lext -> int64 -> int64
val elem_store : Sxe_ir.Types.aelem -> int64 -> int64
val checksum_mix : int64 -> int64 -> int64

type pfunc
(** A function decoded for one (mode, fusion selection). *)

val fusion_stats : pfunc -> (string * int) list
(** Fused superinstruction groups per rule name, in rule order; empty
    when the image was decoded without fusion. *)

val fused_total : pfunc -> int
(** Total fused groups in the image. *)

val enable_dispatch : Profile.t -> unit
(** Enable dispatch-pair collection on a profile with this engine's
    opcode id space; runs passing that profile then count consecutive
    straight-line opcode pairs. *)

val dispatch_counts : Profile.t -> ((string * string) * int) list
(** The collected histogram as [((first, second), count)], count
    descending (deterministic tie order). *)

val disasm : pfunc -> string
(** Flat-code listing, one line per slot: offset, a [B<bid>:] marker on
    block starts, and the opcode name; slots shadowed by a preceding
    fused superinstruction are marked [.]. Debugging and test aid. *)

val decode : ?fuse:Fuse.selection -> canonical:bool -> Sxe_ir.Cfg.func -> pfunc
(** Decode unconditionally (no cache), applying the selected fusion
    rules (default [Fuse.Off]). Exposed for tests and benchmarks. *)

val get_decoded : ?fuse:Fuse.selection -> canonical:bool -> Sxe_ir.Cfg.func -> pfunc
(** Decode through the per-function cache: at most one decode per
    (generation, mode, fusion selection); any mutation through the
    {!Sxe_ir.Cfg} API invalidates every image. *)

val run :
  ?mode:[ `Faithful | `Canonical ] ->
  ?fuel:int64 ->
  ?count_cycles:bool ->
  ?profile:Profile.t ->
  ?fuse:Fuse.selection ->
  Sxe_ir.Prog.t ->
  outcome
(** Execute the program's [main]; same contract as {!Interp.run} minus the
    [trace]/[watch] hooks. [fuse] selects which superinstruction-fusion
    rules the decoder applies (default: the ambient [SXE_FUSE] selection,
    {!Fuse.of_env}); every selection produces bit-identical outcomes,
    counters included. *)
