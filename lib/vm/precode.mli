(** Pre-decoded execution engine.

    Flattens each function into arrays of decoded instructions (fields
    pulled out of the IR records, jump targets resolved to flat offsets,
    canonical-mode re-extension and static costs baked in) and executes
    them with a tight program-counter loop over native-int counters.
    Decoded code is cached per function, keyed by the {!Sxe_ir.Cfg}
    generation counter, and per mode.

    Observable behaviour — output, checksum, trap, return value and the
    dynamic counters — is bit-identical to the structural {!Interp}
    engine. [trace]/[watch] hooks are not supported here; {!Interp.run}
    routes runs that use them to the structural engine. See [docs/VM.md]
    for the format and the invalidation rules. *)

exception Trap of string

(** Heap cells, shared with the structural engine. *)
type cell =
  | IArr of { elem : Sxe_ir.Types.aelem; data : int64 array }
  | FArr of float array
  | RArr of int array

type outcome = {
  output : string;
  checksum : int64;
  trap : string option;
  ret : int64 option;
  executed : int64;
  sext32 : int64;
  sext_sub : int64;
  cycles : int64;
}

val max_alloc : int
val max_depth : int

val builtin_names : string list

val elem_load : Sxe_ir.Types.aelem -> Sxe_ir.Types.lext -> int64 -> int64
val elem_store : Sxe_ir.Types.aelem -> int64 -> int64
val checksum_mix : int64 -> int64 -> int64

type pfunc
(** A function decoded for one mode. *)

val decode : canonical:bool -> Sxe_ir.Cfg.func -> pfunc
(** Decode unconditionally (no cache). Exposed for tests and benchmarks. *)

val get_decoded : canonical:bool -> Sxe_ir.Cfg.func -> pfunc
(** Decode through the per-function cache: at most one decode per
    (generation, mode); any mutation through the {!Sxe_ir.Cfg} API
    invalidates both modes. *)

val run :
  ?mode:[ `Faithful | `Canonical ] ->
  ?fuel:int64 ->
  ?count_cycles:bool ->
  ?profile:Profile.t ->
  Sxe_ir.Prog.t ->
  outcome
(** Execute the program's [main]; same contract as {!Interp.run} minus the
    [trace]/[watch] hooks. *)
