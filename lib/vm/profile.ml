(** Branch-profile collection, mirroring the paper's combined
    interpreter/dynamic compiler: the interpreter "gathers statistical data
    on conditional branches" and hands it to the compiler, which uses it to
    sharpen the branch probabilities behind order determination.

    Beyond branch edges, a profile can carry a {e dispatch-pair histogram}:
    counts of consecutively dispatched opcode pairs in the pre-decoded
    engine, keyed by small integer opcode ids. The histogram is what makes
    superinstruction fusion profile-guided — it names the adjacent pairs
    that dominate a workload's dispatch stream (see
    [sxopt bench --dispatch-counts]). Ids are opaque here; {!Precode} owns
    the id <-> opcode-name mapping and the recording itself. *)

type t = {
  edges : (string * int * int, int64 ref) Hashtbl.t;
  mutable pairs : int array;
      (** flattened [nops * nops] pair counts, row = first opcode of the
          pair; [[||]] when dispatch-pair collection is disabled *)
  mutable pairs_nops : int;  (** row width of [pairs]; 0 when disabled *)
}

let create () = { edges = Hashtbl.create 256; pairs = [||]; pairs_nops = 0 }

(** Enable dispatch-pair collection over an id space of [nops] opcodes
    (idempotent; resizing resets the counts). *)
let enable_pairs t ~nops =
  if nops <= 0 then invalid_arg "Profile.enable_pairs: nops must be positive";
  if t.pairs_nops <> nops then begin
    t.pairs <- Array.make (nops * nops) 0;
    t.pairs_nops <- nops
  end

let pairs_enabled t = t.pairs_nops > 0

(** Raw nonzero pair counts as [((first_id, second_id), count)], count
    descending (ties broken by id order, so output is deterministic). *)
let pair_counts t : ((int * int) * int) list =
  let n = t.pairs_nops in
  let acc = ref [] in
  for a = n - 1 downto 0 do
    for b = n - 1 downto 0 do
      let c = t.pairs.((a * n) + b) in
      if c > 0 then acc := ((a, b), c) :: !acc
    done
  done;
  List.stable_sort (fun (_, c1) (_, c2) -> compare c2 c1) !acc

let record t fname ~src ~dst =
  match Hashtbl.find_opt t.edges (fname, src, dst) with
  | Some r -> r := Int64.add !r 1L
  | None -> Hashtbl.replace t.edges (fname, src, dst) (ref 1L)

(** Measured probability of the edge [src -> dst], if [src] was executed. *)
let probability t fname ~src ~dst =
  let total = ref 0L and this = ref 0L in
  Hashtbl.iter
    (fun (fn, s, d) r ->
      if fn = fname && s = src then begin
        total := Int64.add !total !r;
        if d = dst then this := Int64.add !this !r
      end)
    t.edges;
  if Int64.compare !total 0L > 0 then
    Some (Int64.to_float !this /. Int64.to_float !total)
  else None

(** Curried adapter with the signature {!Sxe_core.Pass.profile_source}. *)
let as_source t : string -> src:int -> dst:int -> float option =
 fun fname ~src ~dst -> probability t fname ~src ~dst
