(** Branch-profile collection, mirroring the paper's combined
    interpreter/dynamic compiler: the interpreter gathers per-edge
    statistics that sharpen the branch probabilities behind order
    determination. A profile can additionally carry a dispatch-pair
    histogram for the pre-decoded engine (profile-guided
    superinstruction fusion); opcode ids are opaque here — {!Precode}
    owns the mapping and the recording. *)

type t = {
  edges : (string * int * int, int64 ref) Hashtbl.t;
  mutable pairs : int array;
      (** flattened [nops * nops] dispatch-pair counts; [[||]] = off *)
  mutable pairs_nops : int;
}

val create : unit -> t

val enable_pairs : t -> nops:int -> unit
(** Enable dispatch-pair collection over [nops] opcode ids. *)

val pairs_enabled : t -> bool

val pair_counts : t -> ((int * int) * int) list
(** Nonzero [((first_id, second_id), count)] pairs, count descending,
    deterministic tie order. *)

val record : t -> string -> src:int -> dst:int -> unit

val probability : t -> string -> src:int -> dst:int -> float option
(** Measured probability of the edge, or [None] if its source block was
    never executed. *)

val as_source : t -> string -> src:int -> dst:int -> float option
(** Curried adapter with the signature {!Sxe_core.Pass.profile_source}. *)
