(** The benchmark registry: the seventeen programs of Tables 1 and 2.

    [scale] grows input sizes roughly linearly; [1] is test-sized, [2] is
    the default for table regeneration. Sources are MiniJ text compiled by
    {!Sxe_lang.Frontend}. *)

type suite = Jbytemark | Specjvm

type t = {
  name : string;
  suite : suite;
  source : string;  (** MiniJ source at the chosen scale *)
}

let jbytemark ?(scale = 1) () =
  List.map (fun (name, source) -> { name; suite = Jbytemark; source }) (Jbm.all ~scale)

let specjvm ?(scale = 1) () =
  List.map (fun (name, source) -> { name; suite = Specjvm; source }) (Spec.all ~scale)

let all ?scale () = jbytemark ?scale () @ specjvm ?scale ()

(** The unsigned/char-heavy kernels (see {!Unsign}): the zero-extension
    residue class, addressable on its own for the zext elimination
    tables. *)
let unsigned ?(scale = 1) () =
  List.map (fun (name, source) -> { name; suite = Jbytemark; source }) (Unsign.all ~scale)

(** Stress kernels beyond the paper's tables (see {!Extras} and
    {!Unsign}); used by the test suites, not by the table
    regeneration. *)
let extras ?(scale = 1) () =
  List.map (fun (name, source) -> { name; suite = Jbytemark; source }) (Extras.all ~scale)
  @ unsigned ~scale ()

let find ?scale name =
  match List.find_opt (fun w -> String.lowercase_ascii w.name = String.lowercase_ascii name) (all ?scale ()) with
  | Some w -> w
  | None -> invalid_arg ("Registry.find: unknown workload " ^ name)

let names ?scale () = List.map (fun w -> w.name) (all ?scale ())
