(** The seventeen benchmark programs of Tables 1 and 2, as MiniJ sources
    parameterized by a [scale] factor ([1] is test-sized). *)

type suite = Jbytemark | Specjvm

type t = { name : string; suite : suite; source : string }

val jbytemark : ?scale:int -> unit -> t list
val specjvm : ?scale:int -> unit -> t list
val all : ?scale:int -> unit -> t list

val unsigned : ?scale:int -> unit -> t list
(** The unsigned/char-heavy kernels (string hashing, byte histogram,
    unsigned division by constants): the zero-extension residue class. *)

val extras : ?scale:int -> unit -> t list
(** Stress kernels beyond the paper's tables (recursion-heavy sort,
    triangular loops, rolling hashes, and the {!unsigned} class);
    test-suite material only. *)

val find : ?scale:int -> string -> t
(** Case-insensitive lookup; raises [Invalid_argument] for unknown
    names. *)

val names : ?scale:int -> unit -> string list
