(** Unsigned/char-heavy stress kernels: the zero-extension residue class.

    The paper's seventeen benchmarks are signed-arithmetic programs where
    sign extension dominates; these three kernels are the unsigned
    counterpart the 64-bit-tips literature warns about. Every [>>>] is
    zext-guarded by the converter, every [& 0xff] masks a sign-extended
    byte, so the baseline drips with zero extensions the (kind × width)
    machinery should discharge. The `workloads` and acceptance matrices
    run them under every variant like any other extra. *)

let prng =
  {|
global int seed;
int rnd() {
  seed = seed * 1103515245 + 12345;
  return (seed >>> 16) & 0x7fff;
}
|}

(** FNV-1a over a byte string, finished with a murmur-style avalanche:
    the mixing steps alternate multiplies with unsigned shifts, so the
    hot loop carries one zext guard per round trip. *)
let string_hash ~scale =
  Printf.sprintf
    {|
%s
void main() {
  seed = 12345;
  int n = %d;
  byte[] text = new byte[n];
  for (int i = 0; i < n; i++) { text[i] = (byte) (rnd() %% 256 - 128); }
  int h = 0x811c9dc5;
  for (int i = 0; i < n; i++) {
    h = (h ^ (text[i] & 255)) * 0x01000193;
  }
  h = h ^ (h >>> 16);
  h = h * 0x85ebca6b;
  h = h ^ (h >>> 13);
  h = h * 0xc2b2ae35;
  h = h ^ (h >>> 16);
  print_int(h);
  checksum(h);
}
|}
    prng (1200 * scale)

(** Byte histogram: the masked-subscript idiom. [data[i] & 255] is a
    provably in-[0,255] index (AnalyzeDEF's And rule), and the bucket
    scan re-reads the counts through a multiplicative [>>>] bucket
    spreader. *)
let byte_histogram ~scale =
  Printf.sprintf
    {|
%s
void main() {
  seed = 999;
  int n = %d;
  byte[] data = new byte[n];
  for (int i = 0; i < n; i++) { data[i] = (byte) (rnd() %% 256 - 128); }
  int[] hist = new int[256];
  for (int i = 0; i < n; i++) {
    int k = data[i] & 255;
    hist[k] = hist[k] + 1;
  }
  int[] spread = new int[64];
  for (int v = 0; v < 256; v++) {
    int k = (hist[v] * 0x9e3779b1) >>> 26;
    spread[k] = spread[k] + hist[v];
  }
  int h = 0;
  int peak = 0;
  for (int v = 0; v < 256; v++) {
    h = h * 31 + hist[v];
    if (hist[v] > peak) { peak = hist[v]; }
  }
  for (int k = 0; k < 64; k++) { h = h * 17 + spread[k]; }
  print_int(peak);
  checksum(h);
  checksum(peak);
}
|}
    prng (1500 * scale)

(** Unsigned division by constants, Hacker's Delight style: shift-add
    reciprocal approximations for /10 and /3 with a remainder fix-up,
    checked against the full-range input treated as unsigned. Every
    approximation step is a [>>>]. *)
let unsigned_div ~scale =
  Printf.sprintf
    {|
%s
int udiv10(int x) {
  int q = (x >>> 1) + (x >>> 2);
  q = q + (q >>> 4);
  q = q + (q >>> 8);
  q = q + (q >>> 16);
  q = q >>> 3;
  int r = x - (q * 10);
  return q + ((r + 6) >>> 4);
}
int udiv3(int x) {
  int q = (x >>> 2) + (x >>> 4);
  q = q + (q >>> 4);
  q = q + (q >>> 8);
  q = q + (q >>> 16);
  int r = x - (q * 3);
  return q + ((r * 11) >>> 5);
}
void main() {
  seed = 4242;
  int n = %d;
  int bad = 0;
  int h = 0;
  for (int i = 0; i < n; i++) {
    int x = rnd() * 65536 + rnd();
    int q = udiv10(x);
    int r = x - (q * 10);
    /* unsigned remainder check: r must land in [0, 10) */
    if (r < 0) { bad = bad + 1; }
    if (r >= 10) { bad = bad + 1; }
    h = h * 31 + q + r;
    int q3 = udiv3(x);
    int r3 = x - (q3 * 3);
    if (r3 < 0) { bad = bad + 1; }
    if (r3 >= 3) { bad = bad + 1; }
    h = h * 31 + q3 + r3;
  }
  print_int(bad);
  checksum(bad);
  checksum(h);
}
|}
    prng (400 * scale)

let all ~scale =
  [
    ("string hash", string_hash ~scale);
    ("byte histogram", byte_histogram ~scale);
    ("unsigned div", unsigned_div ~scale);
  ]
