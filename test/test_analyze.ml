(** Unit tests for the elimination analysis: AnalyzeDEF cases, AnalyzeUSE
    propagation, and each of Theorems 1-4 (Section 3). *)

open Sxe_ir

let compile_with cfg src =
  let prog = Sxe_lang.Frontend.compile src in
  let stats = Sxe_core.Pass.compile cfg prog in
  Validate.check_prog prog;
  (prog, stats)

let theorem_count (stats : Sxe_core.Stats.t) n = stats.Sxe_core.Stats.by_theorem.(n)

let run_ok src prog =
  let reference = Helpers.reference_outcome src in
  let out = Sxe_vm.Interp.run ~mode:`Faithful prog in
  Alcotest.(check bool) "observable equivalence" true (Sxe_vm.Interp.equivalent reference out);
  out

(* -- AnalyzeDEF ------------------------------------------------------- *)

let test_def_and_mask () =
  (* j & 0x0fffffff: the extension after it is redundant (Case 1, the
     paper's AND example) *)
  let src =
    {|
global int g;
void main() {
  int j = g;
  j = j & 0x0fffffff;
  double d = (double) j;    /* requiring use */
  checksum_double(d);
}
|}
  in
  let prog, stats = compile_with (Sxe_core.Config.basic_ud_du ()) src in
  ignore (run_ok src prog);
  (* extensions generated after the load and the AND; both disappear: the
     AND-extension by Case 1, the load extension because no requiring use
     observes it (the AND absorbs the upper bits) *)
  Alcotest.(check int) "nothing remains" 0 stats.Sxe_core.Stats.remaining

let test_def_div_result_extended () =
  let src =
    {|
global int g;
void main() {
  int q = g / 3;
  double d = (double) q;
  checksum_double(d);
}
|}
  in
  let prog, stats = compile_with (Sxe_core.Config.basic_ud_du ()) src in
  ignore (run_ok src prog);
  (* the division's operand needs the load extension, but the quotient is
     a genuine int32: the extension after the division goes *)
  Alcotest.(check int) "only the operand extension remains" 1 stats.Sxe_core.Stats.remaining

let test_use_not_required_by_store () =
  (* a 32-bit store never needs extended sources *)
  let src =
    {|
global int g;
global int h;
void main() {
  int x = g + 1;
  h = x;
  checksum(h);
}
|}
  in
  let prog, stats = compile_with (Sxe_core.Config.basic_ud_du ()) src in
  ignore (run_ok src prog);
  (* checksum(h) reloads h: its own extension chain; x's extension dies *)
  Alcotest.(check bool) "add extension eliminated" true
    (stats.Sxe_core.Stats.eliminated >= 1)

(* -- Theorems --------------------------------------------------------- *)

let upcount_src =
  {|
void main() {
  int n = 40;
  int[] a = new int[n];
  int i = 0;
  while (i < n) { a[i] = i; i = i + 1; }
  int t = 0;
  i = 0;
  while (i != n) { t = t + a[i]; i = i + 2; }
  print_int(t);
  checksum(t);
}
|}

(* The second loop tests on [i != n] and strides by 2 so the interval
   analysis cannot prove the increment free of int32 wrap (a bounds
   check refines the subscript to [0, 2^31-2], so a stride of 1 would
   let no-overflow reasoning prove the increment extended outright and
   Theorem 2 would never be consulted). Only Theorem 2's bounds-check
   argument covers the access. *)

let test_theorem2_upcount () =
  let prog, stats = compile_with (Sxe_core.Config.array ()) upcount_src in
  ignore (run_ok upcount_src prog);
  Alcotest.(check bool) "T2 fired" true (theorem_count stats 2 > 0)

let downcount_src =
  {|
global int mem;
void main() {
  int n = 40;
  int[] a = new int[n];
  int k = 0;
  while (k < n) { a[k] = 3 * k; k = k + 1; }
  mem = n;
  int t = 0;
  int i = mem;
  do { i = i - 1; t += a[i]; } while (i > 0);
  print_int(t);
  checksum(t);
}
|}

let test_theorem4_downcount () =
  let prog, stats = compile_with (Sxe_core.Config.array ()) downcount_src in
  ignore (run_ok downcount_src prog);
  (* i - 1 has addend -1: inside Theorem 4's Java bound [-1, 0x7fffffff]
     but outside Theorem 2's [0, ...] *)
  Alcotest.(check bool) "T4 fired" true (theorem_count stats 4 > 0)

let test_theorem1_upper_zero () =
  (* Theorem 1 in isolation, on hand-built post-conversion IR: the
     subscript is a zero-extended 32-bit memory read (IA64), so its upper
     bits are zero by the load form — but its signed int32 range is
     unknown, so no range fact proves it sign-extended. Only Theorem 1
     covers the access. *)
  let open Sxe_ir in
  let open Sxe_ir.Types in
  let module B = Builder in
  let b, params = B.create ~name:"t1" ~params:[ Ref ] ~ret:I32 () in
  let a = List.hd params in
  let i = B.gload b ~lext:LZero I32 "mem" in       (* upper 32 bits zero *)
  let ext = B.sext b i in
  let v = B.arrload b AI32 a i in
  B.retv b I32 v;
  let f = B.func b in
  Validate.check f;
  let stats = Sxe_core.Stats.create () in
  let _chain_time = Sxe_core.Eliminate.run (Sxe_core.Config.array ()) f stats in
  Alcotest.(check int) "T1 fired" 1 stats.Sxe_core.Stats.by_theorem.(1);
  ignore ext;
  Alcotest.(check int) "subscript extension eliminated" 0 (Sxe_core.Eliminate.count_sext32 f)

let test_theorem3_sub_from_zero_extended () =
  (* Theorem 3 in isolation, on hand-built post-conversion IR: the
     subscript is i - j where i is a zero-extended memory read (IA64) with
     no extension of its own, and 0 <= j <= 7 by a mask. Only the
     subscript extension exists; Theorem 3 must prove it redundant. *)
  let open Sxe_ir in
  let open Sxe_ir.Types in
  let module B = Builder in
  let b, params = B.create ~name:"t3" ~params:[ Ref; I32 ] ~ret:I32 () in
  let a = List.hd params and j0 = List.nth params 1 in
  let i = B.gload b ~lext:LZero I32 "mem" in       (* upper 32 bits zero *)
  let seven = B.iconst b 7 in
  let j = B.and_ b j0 seven in                     (* 0 <= j <= 7 *)
  let sub = B.sub b i j in
  let ext = B.sext b sub in
  let v = B.arrload b AI32 a sub in
  B.retv b I32 v;
  let f = B.func b in
  Validate.check f;
  let stats = Sxe_core.Stats.create () in
  let _chain_time = Sxe_core.Eliminate.run (Sxe_core.Config.array ()) f stats in
  Alcotest.(check int) "T3 fired" 1 stats.Sxe_core.Stats.by_theorem.(3);
  ignore ext;
  Alcotest.(check int) "subscript extension eliminated" 0 (Sxe_core.Eliminate.count_sext32 f)

let test_unbounded_subscript_kept () =
  (* a[i+j] with j unconstrained: no theorem applies, the extension must
     stay *)
  let src =
    {|
global int gi;
global int gj;
void main() {
  int n = 16;
  int[] a = new int[n];
  gi = 3; gj = 5;
  int i = gi;
  int j = gj;
  int t = a[i + j];
  checksum(t);
}
|}
  in
  let prog, stats = compile_with (Sxe_core.Config.array ()) src in
  ignore (run_ok src prog);
  Alcotest.(check bool) "subscript extension kept" true (stats.Sxe_core.Stats.remaining >= 1)

let test_array_declines_unprovable_range () =
  (* AnalyzeARRAY's side condition is the range proof 0 <= j <= 0x7ffffffe.
     Here j = x + y of two extended but otherwise unknown loads: the sum is
     neither provably extended (Add destroys it) nor range-bounded, so no
     theorem may fire and the subscript extension must stay; masking the
     operands first bounds the sum and lets it go. *)
  let open Sxe_ir in
  let open Sxe_ir.Types in
  let module B = Builder in
  let build masked =
    let b, params = B.create ~name:"ad" ~params:[ Ref ] ~ret:I32 () in
    let a = List.hd params in
    let x0 = B.gload b ~lext:LSign I32 "gx" in
    let y0 = B.gload b ~lext:LSign I32 "gy" in
    let x, y =
      if masked then
        let m = B.iconst b 0xFF in
        (B.and_ b x0 m, B.and_ b y0 m)
      else (x0, y0)
    in
    let j = B.add b x y in
    ignore (B.sext b j);
    let v = B.arrload b AI32 a j in
    B.retv b I32 v;
    B.func b
  in
  let eliminate f =
    Validate.check f;
    let stats = Sxe_core.Stats.create () in
    let _ = Sxe_core.Eliminate.run (Sxe_core.Config.array ()) f stats in
    (Sxe_core.Eliminate.count_sext32 f, stats)
  in
  let kept, stats = eliminate (build false) in
  Alcotest.(check int) "unprovable subscript extension kept" 1 kept;
  Alcotest.(check int) "no theorem fired" 0
    (Array.fold_left ( + ) 0 stats.Sxe_core.Stats.by_theorem);
  let kept_masked, _ = eliminate (build true) in
  Alcotest.(check int) "bounded subscript extension eliminated" 0 kept_masked

(* [opaque = true] launders the allocation through a call so the access
   cannot see the array's length; Theorem 4 then depends on the configured
   maxlen, as in Figure 10's discussion. *)
let figure10_src ?(opaque = false) step =
  Printf.sprintf
    {|
global int mem;
int[] make(int n) { return new int[n]; }
void main() {
  int n = 30;
  int[] a = %s;
  int k = 0;
  while (k < n) { a[k] = k * 5; k = k + 1; }
  mem = n;
  int t = 0;
  int i = mem;
  do { i = i - %d; t += a[i]; } while (i > 0);
  print_int(t);
  checksum(t);
}
|}
    (if opaque then "make(n)" else "new int[n]")
    step

let test_figure10_maxlen () =
  (* Figure 10: with step 2, the in-loop subscript extension is removable
     only when the maximum array size is known to be < 0x7fffffff; the
     default (Java) bound must keep it *)
  let src = figure10_src ~opaque:true 2 in
  let prog_default, _ = compile_with (Sxe_core.Config.array ()) src in
  let prog_limited, stats_limited =
    compile_with (Sxe_core.Config.array ~maxlen:0x7fff0001L ()) src
  in
  let out_default = run_ok src prog_default in
  let out_limited = run_ok src prog_limited in
  Alcotest.(check bool) "limited maxlen executes fewer extensions" true
    (Int64.compare out_limited.Sxe_vm.Interp.sext32 out_default.Sxe_vm.Interp.sext32 < 0);
  Alcotest.(check bool) "T4 fired only under the limit" true
    (theorem_count stats_limited 4 > 0)

let test_known_allocation_refines_maxlen () =
  (* the array is allocated with a small constant length reaching the
     access: Theorem 4's maxlen comes from the allocation *)
  let src = figure10_src ~opaque:false 2 in
  let prog, stats = compile_with (Sxe_core.Config.array ()) src in
  ignore (run_ok src prog);
  (* new int[30] is visible to the access (single def), so step -2 is
     admissible even under the default configuration *)
  Alcotest.(check bool) "T4 via allocation bound" true (theorem_count stats 4 > 0)

(* -- 8/16-bit extensions ---------------------------------------------- *)

let test_sub_width_elimination () =
  let src =
    {|
void main() {
  int n = 32;
  byte[] a = new byte[n];
  int k = 0;
  while (k < n) { a[k] = k - 16; k = k + 1; }
  int t = 0;
  k = 0;
  while (k < n) {
    int v = a[k];        /* byte load: sext8 */
    byte c = (byte) v;   /* second sext8: redundant, value already byte */
    t = t + c;
    k = k + 1;
  }
  print_int(t);
  checksum(t);
}
|}
  in
  let reference = Helpers.reference_outcome src in
  let prog, _ = compile_with (Sxe_core.Config.new_all ()) src in
  let out = Sxe_vm.Interp.run ~mode:`Faithful prog in
  Alcotest.(check bool) "equivalent" true (Sxe_vm.Interp.equivalent reference out);
  (* at most one 8-bit extension per iteration remains *)
  Alcotest.(check bool) "redundant sext8 eliminated" true
    (Int64.compare out.Sxe_vm.Interp.sext_sub (Int64.of_int (32 + 8)) <= 0)

let test_upper_zero_chains () =
  (* upper-zero facts propagate through masks and copies; Or needs both
     sides *)
  let open Sxe_ir in
  let open Sxe_ir.Types in
  let module B = Builder in
  let b, params = B.create ~name:"uz" ~params:[ I32 ] ~ret:I32 () in
  let x = List.hd params in
  let u = B.gload b ~lext:LZero I32 "g" in   (* upper zero *)
  let m = B.and_ b x u in                    (* And: either side suffices *)
  let c = B.mov b ~ty:I32 m in               (* copies preserve *)
  let o = B.or_ b c x in                     (* Or with unknown x: lost *)
  B.retv b I32 o;
  let f = B.func b in
  let chains = Sxe_analysis.Chains.build f in
  let ranges = Sxe_analysis.Range.compute f in
  let stats = Sxe_core.Stats.create () in
  let ctx =
    Sxe_core.Analyze.create ~f ~chains ~ranges ~maxlen:Sxe_ir.Types.max_array_length
      ~array_enabled:true ~stats
  in
  let def_of reg =
    let found = ref None in
    Cfg.iter_instrs (fun _ i -> if Instr.def i.Instr.op = Some reg then found := Some i) f;
    Sxe_analysis.Reaching.DIns (Option.get !found)
  in
  Alcotest.(check bool) "load upper zero" true (Sxe_core.Analyze.upper_zero ctx (def_of u));
  Alcotest.(check bool) "and keeps it" true (Sxe_core.Analyze.upper_zero ctx (def_of m));
  Alcotest.(check bool) "copy keeps it" true (Sxe_core.Analyze.upper_zero ctx (def_of c));
  Alcotest.(check bool) "or loses it" false (Sxe_core.Analyze.upper_zero ctx (def_of o));
  (* the masked value is also provably sign-extended only when the mask
     bounds it below 2^31 — here x is unknown, so And(x, upper-zero-load)
     has zero upper bits but an unknown sign bit: not extended *)
  Alcotest.(check bool) "upper-zero alone is not extended" true
    (Sxe_core.Analyze.analyze_def ctx (def_of m))

let test_maxlen_for_chases_copies () =
  let open Sxe_ir in
  let open Sxe_ir.Types in
  let module B = Builder in
  let b, params = B.create ~name:"ml" ~params:[ I32 ] ~ret:I32 () in
  let i = List.hd params in
  let n = B.iconst b 17 in
  let a0 = B.newarr b AI32 n in
  let a1 = B.mov b ~ty:Ref a0 in
  let a2 = B.mov b ~ty:Ref a1 in
  let v = B.arrload b AI32 a2 i in
  B.retv b I32 v;
  let f = B.func b in
  let chains = Sxe_analysis.Chains.build f in
  let ranges = Sxe_analysis.Range.compute f in
  let stats = Sxe_core.Stats.create () in
  let ctx =
    Sxe_core.Analyze.create ~f ~chains ~ranges ~maxlen:Sxe_ir.Types.max_array_length
      ~array_enabled:true ~stats
  in
  let access = ref None in
  Cfg.iter_instrs
    (fun _ ins -> match ins.Instr.op with Instr.ArrLoad _ -> access := Some ins | _ -> ())
    f;
  Alcotest.(check int64) "allocation bound found through two copies" 17L
    (Sxe_core.Analyze.maxlen_for ctx (Option.get !access) a2)

let test_zext_elimination () =
  (* beyond the paper: a zero extension over an IA64 byte load (already
     zero-extended) is removed; over an unknown value it stays *)
  let open Sxe_ir in
  let open Sxe_ir.Types in
  let module B = Builder in
  let count_zext f =
    Cfg.fold_instrs
      (fun n _ i -> match i.Instr.op with Instr.Zext _ -> n + 1 | _ -> n)
      0 f
  in
  let b, params = B.create ~name:"z" ~params:[ Ref; I32 ] ~ret:I32 () in
  let a = List.hd params and i = List.nth params 1 in
  let v = B.arrload b AI8 a i in
  ignore (B.zext b ~from:W8 v);          (* redundant: ld1 zero-extends *)
  let u = B.gload b ~lext:LZero I32 "g" in
  ignore (B.zext b ~from:W8 u);          (* required: upper 24 of low 32 unknown *)
  let s = B.add b v u in
  B.retv b I32 s;
  let f = B.func b in
  Validate.check f;
  let stats = Sxe_core.Stats.create () in
  let _ = Sxe_core.Eliminate.run (Sxe_core.Config.array ()) f stats in
  Alcotest.(check int) "one zext remains" 1 (count_zext f)

let suite =
  [
    Alcotest.test_case "AnalyzeDEF: AND with positive operand" `Quick test_def_and_mask;
    Alcotest.test_case "AnalyzeDEF: division result extended" `Quick test_def_div_result_extended;
    Alcotest.test_case "AnalyzeUSE: stores don't require" `Quick test_use_not_required_by_store;
    Alcotest.test_case "Theorem 2: up-counting loop" `Quick test_theorem2_upcount;
    Alcotest.test_case "Theorem 4: down-counting loop" `Quick test_theorem4_downcount;
    Alcotest.test_case "Theorem 1: zero-extended index" `Quick test_theorem1_upper_zero;
    Alcotest.test_case "Theorem 3: subtraction" `Quick test_theorem3_sub_from_zero_extended;
    Alcotest.test_case "no theorem: extension kept" `Quick test_unbounded_subscript_kept;
    Alcotest.test_case "AnalyzeARRAY declines unprovable range" `Quick
      test_array_declines_unprovable_range;
    Alcotest.test_case "Figure 10: maxlen-dependent" `Quick test_figure10_maxlen;
    Alcotest.test_case "maxlen from allocation" `Quick test_known_allocation_refines_maxlen;
    Alcotest.test_case "8-bit extension elimination" `Quick test_sub_width_elimination;
    Alcotest.test_case "zero-extension elimination (extension)" `Quick test_zext_elimination;
    Alcotest.test_case "upper-zero fact chains" `Quick test_upper_zero_chains;
    Alcotest.test_case "maxlen chases reference copies" `Quick test_maxlen_for_chases_copies;
  ]
