(** Extension-residue auditor tests: planted redundant and planted
    necessary extensions on hand-built programs, the window/range
    classifications, interprocedural summaries, the self-verification
    hard-fail path (an oracle-rejected false positive), and the report
    layer (counts, baseline round-trip, regression gate). *)

open Sxe_ir
open Sxe_ir.Types
open Sxe_audit
module B = Builder

let contains ~needle haystack =
  let n = String.length needle and m = String.length haystack in
  let rec go i = i + n <= m && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let site_for (sites : Audit.site list) (i : Instr.t) : Audit.site =
  match List.find_opt (fun (s : Audit.site) -> s.Audit.iid = i.Instr.iid) sites with
  | Some s -> s
  | None -> Alcotest.failf "no audit site for iid %d" i.Instr.iid

let check_redundant ~what (s : Audit.site) (fact : Audit.fact) =
  match s.Audit.verdict with
  | Audit.Redundant { fact = f; _ } when f = fact -> ()
  | v ->
      Alcotest.failf "%s: expected redundant (%s), got %s" what
        (Audit.fact_to_string fact) (Audit.verdict_to_string v)

let check_necessary ~what (s : Audit.site) =
  match s.Audit.verdict with
  | Audit.Necessary _ -> ()
  | v -> Alcotest.failf "%s: expected necessary, got %s" what (Audit.verdict_to_string v)

let check_unknown ~what (s : Audit.site) =
  match s.Audit.verdict with
  | Audit.Unknown _ -> ()
  | v -> Alcotest.failf "%s: expected unknown, got %s" what (Audit.verdict_to_string v)

(* -- planted redundant: extension of an always-extended definition ---- *)

let test_planted_redundant_def () =
  let b, _ = B.create ~name:"main" ~params:[] () in
  let v = B.iconst b 5 in
  let site = B.sext b v in
  ignore (B.call b "checksum" [ (v, I32) ]);
  B.ret b;
  let p = Helpers.prog_of_func (B.func b) in
  let sites, ver = Audit.audit_prog p in
  let s = site_for sites site in
  check_redundant ~what:"sext of in-range constant" s Audit.Def_extended;
  (match s.Audit.verdict with
  | Audit.Redundant { witness; _ } ->
      Alcotest.(check bool) "witness names the origin" true (witness <> [])
  | _ -> assert false);
  match ver with
  | Some v -> Alcotest.(check int) "verified" 1 v.Audit.attempted
  | None -> Alcotest.fail "verification did not run"

(* -- planted redundant: dead upper bits (proved by deletion) ---------- *)

let test_planted_redundant_dead_upper () =
  let b, _ = B.create ~name:"main" ~params:[] () in
  let l = B.lconst b 0x1_0000_0005L in
  (* l2i: low 32 bits are 5, upper bits garbage *)
  let x = B.mov b ~ty:I32 l in
  let site = B.sext b x in
  B.gstore b I32 "g" x;
  let y = B.gload b I32 "g" in
  let site_b = B.sext b y in
  ignore (B.call b "checksum" [ (y, I32) ]);
  B.ret b;
  let p = Helpers.prog_of_func ~globals:[ ("g", I32) ] (B.func b) in
  let sites, _ = Audit.audit_prog p in
  (* the store observes only the low half: deleting the extension
     recertifies, and the oracle confirms it *)
  check_redundant ~what:"sext feeding only a 32-bit store" (site_for sites site)
    Audit.Dead_upper;
  (* the re-extension of the zero-extending load is demanded by the call
     and its range admits negative values: a concrete counterexample *)
  check_necessary ~what:"sext of zero-extended load feeding a call"
    (site_for sites site_b)

(* -- planted necessary: truncation of a 64-bit value ------------------ *)

let test_planted_necessary_l2i () =
  let b, _ = B.create ~name:"main" ~params:[] () in
  let l = B.lconst b 0x1_0000_0005L in
  let x = B.mov b ~ty:I32 l in
  let site = B.sext b x in
  ignore (B.call b "checksum" [ (x, I32) ]);
  B.ret b;
  let p = Helpers.prog_of_func (B.func b) in
  let sites, _ = Audit.audit_prog p in
  let s = site_for sites site in
  check_necessary ~what:"sext of an l2i truncation" s;
  match s.Audit.verdict with
  | Audit.Necessary { reason } ->
      Alcotest.(check bool) "reason names the truncation" true
        (contains ~needle:"l2i" reason)
  | _ -> assert false

(* -- W8 window classifications ---------------------------------------- *)

let test_w8_window () =
  (* in-window: the truncating extension is the identity *)
  let b, _ = B.create ~name:"main" ~params:[] () in
  let v = B.iconst b 100 in
  let site = B.sext b ~from:W8 v in
  ignore (B.call b "checksum" [ (v, I32) ]);
  B.ret b;
  let p = Helpers.prog_of_func (B.func b) in
  let sites, _ = Audit.audit_prog p in
  check_redundant ~what:"sext8 of 100" (site_for sites site) Audit.Range_window;
  (* out-of-window: the extension rewrites the low bits *)
  let b, _ = B.create ~name:"main" ~params:[] () in
  let v = B.iconst b 200 in
  let site = B.sext b ~from:W8 v in
  B.gstore b I32 "g" v;
  B.ret b;
  let p = Helpers.prog_of_func ~globals:[ ("g", I32) ] (B.func b) in
  let sites, _ = Audit.audit_prog p in
  check_necessary ~what:"sext8 of 200" (site_for sites site);
  (* straddling: range-hostile, a speculation candidate *)
  let b, _ = B.create ~name:"main" ~params:[] () in
  let x = B.gload b I32 "g" in
  let m = B.iconst b 511 in
  let v = B.and_ b x m in
  let site = B.sext b ~from:W8 v in
  B.gstore b I32 "g" v;
  B.ret b;
  let p = Helpers.prog_of_func ~globals:[ ("g", I32) ] (B.func b) in
  let sites, _ = Audit.audit_prog p in
  check_unknown ~what:"sext8 of [0,511]" (site_for sites site)

(* -- zero-extension sites --------------------------------------------- *)

let test_zext_w32_sites () =
  (* upper-zero origin: the zext is the identity, witness names it *)
  let b, _ = B.create ~name:"main" ~params:[] () in
  let v = B.iconst b 5 in
  let site = B.zext b v in
  ignore (B.call b "checksum" [ (v, I32) ]);
  B.ret b;
  let p = Helpers.prog_of_func (B.func b) in
  let sites, ver = Audit.audit_prog p in
  let s = site_for sites site in
  Alcotest.(check bool) "kind is zext32" true
    (s.Audit.kind = Audit.Explicit (Zero, W32));
  check_redundant ~what:"zext of in-range constant" s Audit.Def_extended;
  (match ver with
  | Some v -> Alcotest.(check int) "verified" 1 v.Audit.attempted
  | None -> Alcotest.fail "verification did not run");
  (* sext→zext conversion: sign-extended and provably non-negative *)
  let b, _ = B.create ~name:"main" ~params:[] () in
  let x = B.ashr b (B.iconst b 100) (B.iconst b 2) in
  let site = B.zext b x in
  ignore (B.call b "checksum" [ (x, I32) ]);
  B.ret b;
  let p = Helpers.prog_of_func (B.func b) in
  let sites, _ = Audit.audit_prog p in
  check_redundant ~what:"zext of non-negative sign-extended value"
    (site_for sites site) Audit.Range_nonneg;
  (* dead upper: only the low half is observed *)
  let b, _ = B.create ~name:"main" ~params:[] () in
  let l = B.lconst b 0x1_0000_0005L in
  let x = B.mov b ~ty:I32 l in
  let site = B.zext b x in
  B.gstore b I32 "g" x;
  B.ret b;
  let p = Helpers.prog_of_func ~globals:[ ("g", I32) ] (B.func b) in
  let sites, _ = Audit.audit_prog p in
  check_redundant ~what:"zext feeding only a 32-bit store" (site_for sites site)
    Audit.Dead_upper

let test_zext_w32_necessary () =
  (* a sign-extending load can deliver a negative value, and the
     unsigned shift demands zero upper bits: the guard must stay *)
  let b, _ = B.create ~name:"main" ~params:[] () in
  let x = B.gload b ~lext:LSign I32 "g" in
  let site = B.zext b x in
  let y = B.lshr b x (B.iconst b 1) in
  ignore (B.call b "checksum" [ (y, I32) ]);
  B.ret b;
  let p = Helpers.prog_of_func ~globals:[ ("g", I32) ] (B.func b) in
  let sites, _ = Audit.audit_prog p in
  let s = site_for sites site in
  check_necessary ~what:"zext guard of a sign-extending load" s;
  match s.Audit.verdict with
  | Audit.Necessary { reason } ->
      Alcotest.(check bool) "reason names the sign-extending load" true
        (contains ~needle:"sign-extending 32-bit load" reason)
  | _ -> assert false

let test_zext_window () =
  (* in the unsigned window: zext8 of 200 is the identity (contrast
     with sext8 of 200, which rewrites it to -56) *)
  let b, _ = B.create ~name:"main" ~params:[] () in
  let v = B.iconst b 200 in
  let site = B.zext b ~from:W8 v in
  ignore (B.call b "checksum" [ (v, I32) ]);
  B.ret b;
  let p = Helpers.prog_of_func (B.func b) in
  let sites, _ = Audit.audit_prog p in
  check_redundant ~what:"zext8 of 200" (site_for sites site) Audit.Range_window;
  (* outside the unsigned window: the mask rewrites the low bits *)
  let b, _ = B.create ~name:"main" ~params:[] () in
  let v = B.iconst b 300 in
  let site = B.zext b ~from:W8 v in
  B.gstore b I32 "g" v;
  B.ret b;
  let p = Helpers.prog_of_func ~globals:[ ("g", I32) ] (B.func b) in
  let sites, _ = Audit.audit_prog p in
  check_necessary ~what:"zext8 of 300" (site_for sites site);
  (* straddling: range-hostile, a speculation candidate *)
  let b, _ = B.create ~name:"main" ~params:[] () in
  let x = B.gload b I32 "g" in
  let m = B.iconst b 511 in
  let v = B.and_ b x m in
  let site = B.zext b ~from:W8 v in
  B.gstore b I32 "g" v;
  B.ret b;
  let p = Helpers.prog_of_func ~globals:[ ("g", I32) ] (B.func b) in
  let sites, _ = Audit.audit_prog p in
  check_unknown ~what:"zext8 of [0,511]" (site_for sites site)

(* -- implicit sign-extending loads ------------------------------------ *)

let test_implicit_load () =
  let b, _ = B.create ~name:"main" ~params:[] () in
  let len = B.iconst b 4 in
  let a = B.newarr b AI32 len in
  let v = B.iconst b 7 in
  let i0 = B.iconst b 0 in
  B.arrstore b AI32 a i0 v;
  (* PPC64-style lwa: implicit sign extension *)
  let w = B.arrload b ~lext:LSign AI32 a i0 in
  let wload =
    let blk = Cfg.block (B.func b) 0 in
    List.nth (Cfg.body blk) (List.length (Cfg.body blk) - 1)
  in
  B.gstore b I32 "g" w;
  let w2 = B.arrload b ~lext:LSign AI32 a i0 in
  let w2load =
    let blk = Cfg.block (B.func b) 0 in
    List.nth (Cfg.body blk) (List.length (Cfg.body blk) - 1)
  in
  ignore (B.call b "checksum" [ (w2, I32) ]);
  B.ret b;
  let p = Helpers.prog_of_func ~globals:[ ("g", I32) ] (B.func b) in
  let sites, _ = Audit.audit_prog p in
  (* feeding only a 32-bit store: the implied extension is dead *)
  let s = site_for sites wload in
  Alcotest.(check bool) "kind is load-implied" true (s.Audit.kind = Audit.Load_implied);
  check_redundant ~what:"LSign load feeding a 32-bit store" s Audit.Dead_upper;
  (* feeding an I32 call argument: the extension is demanded *)
  check_necessary ~what:"LSign load feeding a call" (site_for sites w2load)

(* -- self-verification hard-fail: an oracle-rejected false positive --- *)

let test_verification_hard_fail () =
  (* sext8 of 200 is genuinely necessary (it rewrites 200 to -56, and
     the checksum observes the difference through the array round-trip),
     but [assume_redundant] forces the auditor to claim it redundant.
     The patched program still certifies — the low-bit change is
     invisible to the extension-state lattice — so only the
     differential oracle catches the lie, and it must hard-fail. *)
  let b, _ = B.create ~name:"main" ~params:[] () in
  let len = B.iconst b 4 in
  let a = B.newarr b AI32 len in
  let v = B.iconst b 200 in
  let site = B.sext b ~from:W8 v in
  let i0 = B.iconst b 0 in
  B.arrstore b AI32 a i0 v;
  let w = B.arrload b AI32 a i0 in
  ignore (B.sext b w);
  ignore (B.call b "checksum" [ (w, I32) ]);
  B.ret b;
  let p = Helpers.prog_of_func (B.func b) in
  (* sanity: the honest classifier calls it necessary *)
  let sites, _ = Audit.audit_prog ~verify:false p in
  check_necessary ~what:"honest verdict" (site_for sites site);
  (* the forced claim must be caught by the oracle *)
  match
    Audit.audit_prog
      ~assume_redundant:(fun ~fname:_ ~bid:_ ~iid -> iid = site.Instr.iid)
      p
  with
  | _ -> Alcotest.fail "oracle-rejected false positive was not caught"
  | exception Audit.Verification_failed msg ->
      Alcotest.(check bool) "failure names the auditor" true
        (String.length msg > 0)

(* -- interprocedural summaries ---------------------------------------- *)

let test_interprocedural_summary () =
  (* callee returns either 3 or 7; the summary bounds the call result,
     which is what makes the caller's sext8 provably in-window *)
  let cb, cparams = B.create ~name:"small" ~params:[ I32 ] ~ret:I32 () in
  let arg = List.hd cparams in
  let zero = B.iconst cb 0 in
  let b1 = B.new_block cb and b2 = B.new_block cb in
  B.br cb Lt arg zero ~ifso:b1 ~ifnot:b2;
  B.switch cb b1;
  let three = B.iconst cb 3 in
  B.retv cb I32 three;
  B.switch cb b2;
  let seven = B.iconst cb 7 in
  B.retv cb I32 seven;
  let callee = B.func cb in
  let mb, _ = B.create ~name:"main" ~params:[] () in
  let k = B.iconst mb 1 in
  let r =
    match B.call mb ~ret:I32 "small" [ (k, I32) ] with
    | Some r -> r
    | None -> assert false
  in
  let site = B.sext mb ~from:W8 r in
  B.gstore mb I32 "g" r;
  B.ret mb;
  let p = Helpers.prog_of_func ~globals:[ ("g", I32) ] (B.func mb) in
  Prog.add_func p callee;
  (* the summary itself *)
  let summ = Sxe_analysis.Summary.compute p in
  (match Sxe_analysis.Summary.find summ "small" with
  | Some (lo, hi) ->
      Alcotest.(check (pair int64 int64)) "summary of small" (3L, 7L) (lo, hi)
  | None -> Alcotest.fail "no summary for small");
  (* intraprocedural audit cannot bound the call result *)
  let solo = Audit.audit_func (Prog.find_func p "main") in
  check_unknown ~what:"without summaries" (site_for solo site);
  (* whole-program audit proves the window via the summary *)
  let sites, _ = Audit.audit_prog p in
  check_redundant ~what:"with summaries" (site_for sites site) Audit.Range_window

(* -- lint registration ------------------------------------------------ *)

let test_lint_rules () =
  Audit.register_lint_rules ();
  (match Sxe_check.Lint.find_rule Audit.rule_redundant with
  | Some _ -> ()
  | None -> Alcotest.fail "audit-redundant-ext not registered");
  let b, _ = B.create ~name:"main" ~params:[] () in
  let v = B.iconst b 5 in
  let site = B.sext b v in
  ignore (B.call b "checksum" [ (v, I32) ]);
  B.ret b;
  let findings = Sxe_check.Lint.run_func ~rules:Audit.lint_rules (B.func b) in
  match
    List.find_opt
      (fun (fi : Sxe_check.Lint.finding) ->
        fi.Sxe_check.Lint.rule = Audit.rule_redundant
        && fi.Sxe_check.Lint.iid = Some site.Instr.iid)
      findings
  with
  | Some fi ->
      Alcotest.(check (option int)) "idx is positional" (Some 1)
        fi.Sxe_check.Lint.idx
  | None -> Alcotest.fail "no audit-redundant-ext finding"

(* -- report layer ----------------------------------------------------- *)

let mk_cell input variant verdicts : Report.cell =
  let sites =
    List.mapi
      (fun i v ->
        {
          Audit.fname = "f";
          bid = 0;
          iid = i;
          idx = Some i;
          reg = i;
          kind = Audit.Explicit (Sign, W32);
          verdict = v;
        })
      verdicts
  in
  { Report.input; variant; sites }

let red = Audit.Redundant { fact = Audit.Dead_upper; witness = [] }
let nec = Audit.Necessary { reason = "planted" }
let unk = Audit.Unknown { reason = "planted" }

let test_report_counts_and_baseline () =
  let cells =
    [ mk_cell "w1" "baseline" [ red; red; nec; unk ]; mk_cell "w1" "all" [ unk ] ]
  in
  let n = Report.counts (List.hd cells).Report.sites in
  Alcotest.(check (triple int int int))
    "counts" (2, 1, 1)
    (n.Report.redundant, n.Report.necessary, n.Report.unknown);
  let text = Report.baseline_of_cells cells in
  let parsed = Report.parse_baseline text in
  Alcotest.(check int) "round-trip rows" 2 (List.length parsed);
  (* self-diff passes *)
  Alcotest.(check (list string))
    "self diff clean" []
    (Report.diff_baseline ~baseline:parsed cells);
  (* a regression (more redundant) is caught *)
  let worse = [ mk_cell "w1" "baseline" [ red; red; red ] ] in
  Alcotest.(check bool)
    "regression caught" true
    (Report.diff_baseline ~baseline:parsed worse <> []);
  (* a new cell arriving with redundant findings is caught *)
  let fresh = [ mk_cell "w2" "baseline" [ red ] ] in
  Alcotest.(check bool)
    "new cell caught" true
    (Report.diff_baseline ~baseline:parsed fresh <> []);
  (* improvements pass *)
  let better = [ mk_cell "w1" "baseline" [ red; nec ] ] in
  Alcotest.(check (list string))
    "improvement passes" []
    (Report.diff_baseline ~baseline:parsed better);
  (* malformed baselines fail loudly *)
  (match Report.parse_baseline "not\ta\tbaseline" with
  | _ -> Alcotest.fail "malformed baseline accepted"
  | exception Failure _ -> ());
  (* SARIF and JSON render without raising and carry the rule ids *)
  let sarif = Report.sarif cells in
  Alcotest.(check bool) "sarif mentions rule" true
    (let needle = "audit-redundant-ext" in
     let n = String.length needle and m = String.length sarif in
     let rec go i = i + n <= m && (String.sub sarif i n = needle || go (i + 1)) in
     go 0);
  ignore (Report.cells_to_json cells)

let suite =
  [
    Alcotest.test_case "planted redundant (def-extended)" `Quick
      test_planted_redundant_def;
    Alcotest.test_case "planted redundant (dead upper)" `Quick
      test_planted_redundant_dead_upper;
    Alcotest.test_case "planted necessary (l2i)" `Quick test_planted_necessary_l2i;
    Alcotest.test_case "W8 window classifications" `Quick test_w8_window;
    Alcotest.test_case "zext32 sites" `Quick test_zext_w32_sites;
    Alcotest.test_case "zext32 necessary guard" `Quick test_zext_w32_necessary;
    Alcotest.test_case "zext unsigned window" `Quick test_zext_window;
    Alcotest.test_case "implicit sign-extending loads" `Quick test_implicit_load;
    Alcotest.test_case "oracle-rejected false positive hard-fails" `Quick
      test_verification_hard_fail;
    Alcotest.test_case "interprocedural summaries" `Quick
      test_interprocedural_summary;
    Alcotest.test_case "lint rule registration" `Quick test_lint_rules;
    Alcotest.test_case "report counts and baseline gate" `Quick
      test_report_counts_and_baseline;
  ]
