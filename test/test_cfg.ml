(** CFG structure tests: traversal orders, predecessors, dominators,
    natural loops. *)

open Sxe_ir
open Sxe_ir.Types
module B = Builder

(* a diamond:      B0 -> B1, B2 -> B3 *)
let diamond () =
  let b, _ = B.create ~name:"diamond" ~params:[ I32 ] ~ret:I32 () in
  let x = B.iconst b 1 in
  let b1 = B.new_block b and b2 = B.new_block b and b3 = B.new_block b in
  B.br b Lt x x ~ifso:b1 ~ifnot:b2;
  B.switch b b1;
  B.jmp b b3;
  B.switch b b2;
  B.jmp b b3;
  B.switch b b3;
  B.retv b I32 x;
  (B.func b, b1, b2, b3)

(* entry B0 -> header B1 <-> body B2, exit B3; inner loop inside B2? keep
   simple: B1 -> B2 -> B1 back edge, B1 -> B3 exit. *)
let simple_loop () =
  let b, _ = B.create ~name:"loop" ~params:[ I32 ] ~ret:I32 () in
  let x = B.iconst b 0 in
  let h = B.new_block b and body = B.new_block b and ex = B.new_block b in
  B.jmp b h;
  B.switch b h;
  B.br b Lt x x ~ifso:body ~ifnot:ex;
  B.switch b body;
  B.jmp b h;
  B.switch b ex;
  B.retv b I32 x;
  (B.func b, h, body, ex)

let test_preds_succs () =
  let f, b1, b2, b3 = diamond () in
  let preds = Cfg.preds f in
  Alcotest.(check (list int)) "entry preds" [] preds.(0);
  Alcotest.(check (list int)) "join preds" (List.sort compare [ b1; b2 ])
    (List.sort compare preds.(b3));
  Alcotest.(check (list int)) "entry succs" (List.sort compare [ b1; b2 ])
    (List.sort compare (Cfg.succs (Cfg.block f 0)))

let test_rpo () =
  let f, _, _, b3 = diamond () in
  let rpo = Cfg.rpo f in
  Alcotest.(check int) "rpo starts at entry" 0 (List.hd rpo);
  Alcotest.(check int) "rpo ends at exit" b3 (List.nth rpo (List.length rpo - 1));
  Alcotest.(check int) "all blocks reachable" 4 (List.length rpo)

let test_dominators_diamond () =
  let f, b1, b2, b3 = diamond () in
  let dom = Sxe_analysis.Dominator.compute f in
  Alcotest.(check bool) "entry dominates all" true
    (Sxe_analysis.Dominator.dominates dom 0 b3);
  Alcotest.(check bool) "b1 does not dominate join" false
    (Sxe_analysis.Dominator.dominates dom b1 b3);
  Alcotest.(check (option int)) "idom of join" (Some 0) (Sxe_analysis.Dominator.idom dom b3);
  Alcotest.(check (option int)) "idom of b2" (Some 0) (Sxe_analysis.Dominator.idom dom b2)

let test_loops () =
  let f, h, body, ex = simple_loop () in
  let loops = Sxe_analysis.Loops.compute f in
  Alcotest.(check bool) "has loop" true (Sxe_analysis.Loops.in_any_loop loops);
  Alcotest.(check bool) "header detected" true (Sxe_analysis.Loops.is_header loops h);
  Alcotest.(check int) "header depth" 1 (Sxe_analysis.Loops.depth loops h);
  Alcotest.(check int) "body depth" 1 (Sxe_analysis.Loops.depth loops body);
  Alcotest.(check int) "exit depth" 0 (Sxe_analysis.Loops.depth loops ex);
  Alcotest.(check int) "entry depth" 0 (Sxe_analysis.Loops.depth loops 0)

let test_nested_loops () =
  (* B0 -> H1 -> H2 -> B -> H2 (inner back) ; H2 -> H1 (outer back); H1 -> X *)
  let b, _ = B.create ~name:"nested" ~params:[ I32 ] ~ret:I32 () in
  let x = B.iconst b 0 in
  let h1 = B.new_block b and h2 = B.new_block b in
  let body = B.new_block b and ex = B.new_block b in
  B.jmp b h1;
  B.switch b h1;
  B.br b Lt x x ~ifso:h2 ~ifnot:ex;
  B.switch b h2;
  B.br b Lt x x ~ifso:body ~ifnot:h1;
  B.switch b body;
  B.jmp b h2;
  B.switch b ex;
  B.retv b I32 x;
  let f = B.func b in
  let loops = Sxe_analysis.Loops.compute f in
  Alcotest.(check int) "inner body depth 2" 2 (Sxe_analysis.Loops.depth loops body);
  Alcotest.(check int) "outer header depth 1" 1 (Sxe_analysis.Loops.depth loops h1);
  Alcotest.(check int) "max depth" 2 (Sxe_analysis.Loops.max_depth loops)

let test_freq_loop_hotter () =
  let f, h, body, ex = simple_loop () in
  let freq = Sxe_analysis.Freq.estimate f in
  Alcotest.(check bool) "loop body hotter than exit" true (freq.(body) > freq.(ex));
  Alcotest.(check bool) "header hotter than entry" true (freq.(h) > freq.(0))

let test_freq_profile_overrides () =
  let f, _, b2, _ = diamond () in
  (* profile says the else edge is taken 90% of the time *)
  let edge_prob ~src ~dst = if src = 0 && dst = b2 then Some 0.9 else Some 0.1 in
  let freq = Sxe_analysis.Freq.estimate ~edge_prob f in
  Alcotest.(check bool) "profiled edge dominates" true (freq.(b2) > 0.5)

let test_instr_surgery () =
  let b, _ = B.create ~name:"s" ~params:[] ~ret:I32 () in
  let x = B.iconst b 1 in
  let y = B.iconst b 2 in
  let s = B.add b x y in
  B.retv b I32 s;
  let f = B.func b in
  let blk = Cfg.block f 0 in
  let n0 = List.length (Cfg.body blk) in
  let mid = List.nth (Cfg.body blk) 1 in
  let extra = Cfg.mk_instr f (Instr.Sext { r = x; from = W32 }) in
  Cfg.insert_before blk ~anchor:mid.Instr.iid extra;
  Alcotest.(check int) "insert grows body" (n0 + 1) (List.length (Cfg.body blk));
  Alcotest.(check int) "inserted at position 1" extra.Instr.iid
    (List.nth (Cfg.body blk) 1).Instr.iid;
  Alcotest.(check bool) "remove" true (Cfg.remove_instr blk extra.Instr.iid);
  Alcotest.(check int) "remove shrinks" n0 (List.length (Cfg.body blk));
  Alcotest.(check bool) "remove missing is false" false (Cfg.remove_instr blk 9999)

(* Regression: the Vec dummy slots of two functions' block vectors must
   be distinct records. A single shared dummy (one [gen = ref 0] aliased
   into every CFG) meant a write through any dummy slot mutated all CFGs
   at once — and was a cross-domain data race. *)
let test_dummy_slots_not_shared () =
  let f1, _, _, _ = diamond () in
  let f2, _, _, _ = simple_loop () in
  let d1 = Sxe_util.Vec.dummy f1.Cfg.blocks in
  let d2 = Sxe_util.Vec.dummy f2.Cfg.blocks in
  Alcotest.(check bool) "distinct dummy records" false (d1 == d2);
  Alcotest.(check bool) "distinct generation refs" false (d1.Cfg.gen == d2.Cfg.gen);
  (* write through f1's dummy slot... *)
  let v1 = Cfg.version f1 and v2 = Cfg.version f2 in
  let body2_before = Cfg.body (Cfg.block f2 0) in
  Cfg.append_instr d1 (Cfg.mk_instr f1 (Instr.Sext { r = 0; from = W32 }));
  Cfg.set_term d1 (Instr.Jmp 0);
  (* ...and nothing else moves: not the other function's blocks, not
     either function's generation, not a freshly made dummy *)
  Alcotest.(check int) "f1 generation untouched" v1 (Cfg.version f1);
  Alcotest.(check int) "f2 generation untouched" v2 (Cfg.version f2);
  Alcotest.(check int) "f2 body untouched" (List.length body2_before)
    (List.length (Cfg.body (Cfg.block f2 0)));
  Alcotest.(check int) "f2 dummy slot untouched" 0 (List.length (Cfg.body d2));
  Alcotest.(check int) "fresh dummies start empty" 0
    (List.length (Cfg.body (Cfg.dummy_block ())))

let suite =
  [
    Alcotest.test_case "preds/succs" `Quick test_preds_succs;
    Alcotest.test_case "dummy slots are per-CFG" `Quick test_dummy_slots_not_shared;
    Alcotest.test_case "rpo" `Quick test_rpo;
    Alcotest.test_case "dominators on diamond" `Quick test_dominators_diamond;
    Alcotest.test_case "natural loop" `Quick test_loops;
    Alcotest.test_case "nested loops" `Quick test_nested_loops;
    Alcotest.test_case "freq: loops hotter" `Quick test_freq_loop_hotter;
    Alcotest.test_case "freq: profile override" `Quick test_freq_profile_overrides;
    Alcotest.test_case "instruction surgery" `Quick test_instr_surgery;
  ]
