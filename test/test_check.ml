(** Tests for the extension-state certifier and the lint framework:
    certification of every workload under every variant, rejection of
    hand-built miscompiles with precise locations and witness chains,
    the built-in lint rules, the oracle's [Certify] divergence class,
    and the paranoid per-stage gate. *)

open Sxe_ir
open Sxe_ir.Types
module B = Builder
module Check = Sxe_check.Check
module Certify = Sxe_check.Certify
module Lint = Sxe_check.Lint

let need = Alcotest.testable
    (fun ppf -> function
      | Certify.Needs_extended -> Format.fprintf ppf "Needs_extended"
      | Certify.Needs_zero_extended -> Format.fprintf ppf "Needs_zero_extended"
      | Certify.Needs_subscript -> Format.fprintf ppf "Needs_subscript")
    ( = )

(* ------------------------------------------------------------------ *)
(* Certification of sound compiles                                     *)
(* ------------------------------------------------------------------ *)

(** The acceptance matrix: every registry workload (and extras), under
    every pipeline variant, must certify after compilation. *)
let test_workloads_certify () =
  let ws =
    Sxe_workloads.Registry.all ~scale:1 ()
    @ Sxe_workloads.Registry.extras ~scale:1 ()
  in
  List.iter
    (fun (w : Sxe_workloads.Registry.t) ->
      let base = Sxe_lang.Frontend.compile w.source in
      List.iter
        (fun (cfg : Sxe_core.Config.t) ->
          let p = Clone.clone_prog base in
          ignore (Sxe_core.Pass.compile cfg p);
          match Check.certify_prog p with
          | [] -> ()
          | e :: _ ->
              Alcotest.failf "%s / %s: %s" w.name cfg.Sxe_core.Config.name
                (Certify.error_to_string e))
        (Helpers.all_variants ()))
    ws

let test_corpus_certifies () =
  let entries = Sxe_fuzz.Corpus.load_dir "../corpus" in
  Alcotest.(check bool) "corpus present" true (entries <> []);
  List.iter
    (fun (name, case) ->
      let base = Sxe_fuzz.Oracle.prog_of_case case in
      List.iter
        (fun (cfg : Sxe_core.Config.t) ->
          let p = Clone.clone_prog base in
          ignore (Sxe_core.Pass.compile cfg p);
          match Check.certify_prog p with
          | [] -> ()
          | e :: _ ->
              Alcotest.failf "%s / %s: %s" name cfg.Sxe_core.Config.name
                (Certify.error_to_string e))
        (Helpers.all_variants ()))
    entries

(** The refinement rule is load-bearing: in [while (i < n) a[i] = i;]
    the eliminator deletes the subscript extension (Theorem 2), and the
    certifier can only re-prove the access safe because an array use
    refines its index — and the index's whole copy class — to
    subscript-safe for the rest of the path. *)
let test_loop_subscript_certifies_after_elimination () =
  let src =
    {|
void main() {
  int n = 40;
  int[] a = new int[n];
  int i = 0;
  while (i < n) { a[i] = i; i = i + 1; }
  int t = 0;
  i = 0;
  while (i < n) { t = t + a[i]; i = i + 1; }
  checksum(t);
}
|}
  in
  let prog = Sxe_lang.Frontend.compile src in
  let stats = Sxe_core.Pass.compile (Sxe_core.Config.new_all ()) prog in
  Alcotest.(check bool) "something was eliminated" true
    (stats.Sxe_core.Stats.eliminated > 0);
  Alcotest.(check int) "certified" 0 (List.length (Check.certify_prog prog))

(* ------------------------------------------------------------------ *)
(* Rejection of miscompiled functions                                  *)
(* ------------------------------------------------------------------ *)

(** An [l2i] truncation leaves garbage upper bits; feeding it to [i2d]
    (which converts the full register) without an extension is exactly
    the miscompile the certifier exists to catch. *)
let test_miscompile_rejected_with_location () =
  let b, params = B.create ~name:"bad" ~params:[ I64 ] ~ret:F64 () in
  let q = List.hd params in
  let x = B.mov b ~ty:I32 q in
  let d = B.i2d b x in
  B.retv b F64 d;
  let f = B.func b in
  Validate.check f;
  match Check.certify f with
  | [ e ] ->
      Alcotest.(check string) "function" "bad" e.Certify.fname;
      Alcotest.(check int) "block" 0 e.Certify.bid;
      let i2d = List.nth (Cfg.body (Cfg.block f 0)) 1 in
      Alcotest.(check (option int)) "instruction" (Some i2d.Instr.iid) e.Certify.iid;
      Alcotest.(check int) "register" x e.Certify.reg;
      Alcotest.check need "need" Certify.Needs_extended e.Certify.need;
      Alcotest.(check bool) "state is not extended" false
        e.Certify.state.Sxe_check.Extstate.ext
  | es -> Alcotest.failf "expected exactly one error, got %d" (List.length es)

let test_extension_repairs_miscompile () =
  let b, params = B.create ~name:"good" ~params:[ I64 ] ~ret:F64 () in
  let q = List.hd params in
  let x = B.mov b ~ty:I32 q in
  ignore (B.sext b x);
  let d = B.i2d b x in
  B.retv b F64 d;
  let f = B.func b in
  Validate.check f;
  Alcotest.(check int) "certified once extended" 0 (List.length (Check.certify f))

let test_garbage_subscript_rejected () =
  let b, params = B.create ~name:"sub" ~params:[ Ref; I64 ] ~ret:I32 () in
  let a = List.hd params and q = List.nth params 1 in
  let i = B.mov b ~ty:I32 q in
  (* [LSign] keeps the loaded value itself unobjectionable (the I32
     return is an ABI-extended use): only the index may be reported *)
  let v = B.arrload b ~lext:LSign AI32 a i in
  B.retv b I32 v;
  let f = B.func b in
  Validate.check f;
  match Check.certify f with
  | [ e ] ->
      Alcotest.(check int) "register" i e.Certify.reg;
      Alcotest.check need "need" Certify.Needs_subscript e.Certify.need
  | es -> Alcotest.failf "expected exactly one error, got %d" (List.length es)

(** The witness walk follows copies back to the origin of the unproven
    state: from the failing use through the [Mov] chain to the [l2i]
    that manufactured the garbage. *)
let test_witness_follows_copy_chain () =
  let b, params = B.create ~name:"wit" ~params:[ I64 ] ~ret:F64 () in
  let q = List.hd params in
  let x = B.mov b ~ty:I32 q in
  let y = B.mov b ~ty:I32 x in
  let z = B.mov b ~ty:I32 y in
  let d = B.i2d b z in
  B.retv b F64 d;
  let f = B.func b in
  let body = Cfg.body (Cfg.block f 0) in
  let iid_of n = (List.nth body n).Instr.iid in
  match Check.certify f with
  | [ e ] ->
      Alcotest.(check bool) "witness nonempty" true (e.Certify.witness <> []);
      Alcotest.(check bool) "witness reaches the l2i through both copies" true
        (List.mem (0, iid_of 0) e.Certify.witness
        && List.mem (0, iid_of 1) e.Certify.witness
        && List.mem (0, iid_of 2) e.Certify.witness)
  | es -> Alcotest.failf "expected exactly one error, got %d" (List.length es)

(** Garbage flowing around a loop is still garbage: the fix for the
    solver's interior initialization must not make back-edge facts
    vacuously true. *)
let test_loop_carried_garbage_rejected () =
  let b, params = B.create ~name:"loopbad" ~params:[ I64; I32 ] ~ret:F64 () in
  let q = List.hd params and n = List.nth params 1 in
  let x = B.mov b ~ty:I32 q in
  let zero = B.iconst b 0 in
  let h = B.new_block b and body = B.new_block b and ex = B.new_block b in
  B.jmp b h;
  B.switch b h;
  B.br b Lt zero n ~ifso:body ~ifnot:ex;
  B.switch b body;
  B.jmp b h;
  B.switch b ex;
  let d = B.i2d b x in
  B.retv b F64 d;
  let f = B.func b in
  Validate.check f;
  match Check.certify f with
  | [ e ] ->
      Alcotest.(check int) "fails in the exit block" ex e.Certify.bid;
      Alcotest.(check int) "register" x e.Certify.reg
  | es -> Alcotest.failf "expected exactly one error, got %d" (List.length es)

(* ------------------------------------------------------------------ *)
(* Lint rules                                                          *)
(* ------------------------------------------------------------------ *)

let findings_for rule f =
  List.filter (fun (fi : Lint.finding) -> fi.Lint.rule = rule) (Lint.run_func f)

let test_lint_redundant_sext () =
  let b, _ = B.create ~name:"rs" ~params:[] ~ret:I32 () in
  let c = B.iconst b 5 in
  ignore (B.sext b c);
  B.retv b I32 c;
  let f = B.func b in
  Alcotest.(check int) "constant re-extension flagged" 1
    (List.length (findings_for "redundant-sext" f));
  (* the same extension over genuinely unknown upper bits is required *)
  let b, params = B.create ~name:"rs2" ~params:[ I64 ] ~ret:F64 () in
  let x = B.mov b ~ty:I32 (List.hd params) in
  ignore (B.sext b x);
  B.retv b F64 (B.i2d b x);
  let g = B.func b in
  Alcotest.(check int) "required extension not flagged" 0
    (List.length (findings_for "redundant-sext" g))

let test_lint_dead_justext () =
  let b, params = B.create ~name:"dj" ~params:[ I32 ] ~ret:I32 () in
  let x = List.hd params in
  ignore (B.justext b x);
  B.retv b I32 x;
  let f = B.func b in
  Alcotest.(check int) "leftover JustExt flagged" 1
    (List.length (findings_for "dead-justext" f))

let test_lint_unreachable_block () =
  let b, params = B.create ~name:"ub" ~params:[ I32 ] ~ret:I32 () in
  let x = List.hd params in
  B.retv b I32 x;
  let dead = B.new_block b in
  B.switch b dead;
  B.retv b I32 x;
  let f = B.func b in
  match findings_for "unreachable-block" f with
  | [ fi ] -> Alcotest.(check int) "names the orphan block" dead fi.Lint.bid
  | fis -> Alcotest.failf "expected one finding, got %d" (List.length fis)

let test_lint_critical_edge () =
  (* B0 branches to B1/B2 and B1 falls through to B2: the edge B0->B2
     leaves a multi-successor source for a multi-predecessor sink *)
  let b, params = B.create ~name:"ce" ~params:[ I32 ] ~ret:I32 () in
  let x = List.hd params in
  let b1 = B.new_block b and b2 = B.new_block b in
  B.br b Lt x x ~ifso:b1 ~ifnot:b2;
  B.switch b b1;
  B.jmp b b2;
  B.switch b b2;
  B.retv b I32 x;
  let f = B.func b in
  match findings_for "critical-edge" f with
  | [ fi ] -> Alcotest.(check int) "source block" 0 fi.Lint.bid
  | fis -> Alcotest.failf "expected one finding, got %d" (List.length fis)

let test_lint_mov_chain () =
  let b, params = B.create ~name:"mc" ~params:[ I32 ] ~ret:I32 () in
  let x = List.hd params in
  let y = B.mov b ~ty:I32 x in
  let z = B.mov b ~ty:I32 y in
  B.retv b I32 z;
  Alcotest.(check int) "copy of a copy flagged" 1
    (List.length (findings_for "mov-chain" (B.func b)));
  (* redefining the chain head invalidates the chain *)
  let b, params = B.create ~name:"mc2" ~params:[ I32 ] ~ret:I32 () in
  let x = List.hd params in
  let y = B.mov b ~ty:I32 x in
  B.binop_to b Add ~dst:y y y;
  let z = B.mov b ~ty:I32 y in
  B.retv b I32 z;
  Alcotest.(check int) "broken chain not flagged" 0
    (List.length (findings_for "mov-chain" (B.func b)))

let test_lint_const_cmp () =
  let b, _ = B.create ~name:"cc" ~params:[] ~ret:I32 () in
  let c1 = B.iconst b 1 in
  let c2 = B.iconst b 2 in
  let r = B.cmp b Lt c1 c2 in
  B.retv b I32 r;
  Alcotest.(check int) "constant compare flagged" 1
    (List.length (findings_for "const-cmp" (B.func b)))

let test_lint_registry_and_severity () =
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " registered") true
        (Lint.find_rule name <> None))
    [ "redundant-sext"; "dead-justext"; "unreachable-block"; "critical-edge";
      "mov-chain"; "const-cmp" ];
  Alcotest.(check bool) "no findings, no severity" true
    (Lint.max_severity [] = None);
  let b, _ = B.create ~name:"sv" ~params:[] ~ret:I32 () in
  let c1 = B.iconst b 1 in
  let c2 = B.iconst b 2 in
  let r = B.cmp b Lt c1 c2 in
  ignore (B.sext b c1);
  B.retv b I32 r;
  let fs = Lint.run_func (B.func b) in
  Alcotest.(check bool) "warning dominates info" true
    (Lint.max_severity fs = Some Lint.Warning)

(* The registry starts from the immutable built-in base list, and
   [register] is idempotent by name: re-registering replaces rather than
   duplicates, and built-ins themselves are never mutated. *)
let test_lint_registry_frozen_builtins () =
  let builtin_names = List.map (fun (r : Lint.rule) -> r.Lint.name) Lint.builtins in
  Alcotest.(check int) "six built-ins" 6 (List.length builtin_names);
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " in registry") true (Lint.find_rule name <> None))
    builtin_names;
  let noop name : Lint.rule =
    { name; doc = "noop"; severity = Lint.Info; check = (fun _ _ -> []) }
  in
  let before = List.length (Lint.rules ()) in
  Lint.register (noop "test-frozen-probe");
  Lint.register (noop "test-frozen-probe");
  Alcotest.(check int) "re-registration is idempotent" (before + 1)
    (List.length (Lint.rules ()));
  (* shadowing a built-in replaces it in the registry but leaves the
     immutable base list alone *)
  Lint.register (noop "const-cmp");
  Alcotest.(check int) "shadowing does not grow the registry" (before + 1)
    (List.length (Lint.rules ()));
  Alcotest.(check bool) "builtins list unaffected" true
    (List.exists
       (fun (r : Lint.rule) -> r.Lint.name = "const-cmp" && r.Lint.doc <> "noop")
       Lint.builtins);
  (* restore the real rule for the rest of the suite *)
  Lint.register
    (List.find (fun (r : Lint.rule) -> r.Lint.name = "const-cmp") Lint.builtins)

(* Concurrent readers and writers must never observe a torn rule list:
   every snapshot contains all six built-in names exactly once. *)
let test_lint_registry_concurrent () =
  let noop name : Lint.rule =
    { name; doc = "noop"; severity = Lint.Info; check = (fun _ _ -> []) }
  in
  let torn = Atomic.make false in
  let worker k () =
    for _ = 1 to 200 do
      Lint.register (noop (Printf.sprintf "test-conc-%d" k));
      let names = List.map (fun (r : Lint.rule) -> r.Lint.name) (Lint.rules ()) in
      let count n = List.length (List.filter (String.equal n) names) in
      if List.exists (fun (r : Lint.rule) -> count r.Lint.name <> 1) Lint.builtins
      then Atomic.set torn true
    done
  in
  let ds = List.init 4 (fun k -> Domain.spawn (worker k)) in
  List.iter Domain.join ds;
  Alcotest.(check bool) "no torn registry snapshot" false (Atomic.get torn);
  Alcotest.(check int) "all four probes registered" 4
    (List.length
       (List.filter
          (fun (r : Lint.rule) ->
            String.length r.Lint.name >= 10 && String.sub r.Lint.name 0 10 = "test-conc-")
          (Lint.rules ())))

let test_lint_custom_rule () =
  let saw = ref 0 in
  let rule : Lint.rule =
    { name = "test-probe"; doc = "counts functions"; severity = Lint.Info;
      check = (fun _sol f -> incr saw;
                [ { Lint.rule = "test-probe"; severity = Lint.Info;
                    fname = f.Cfg.name; bid = 0; iid = None; idx = None;
                    message = "hi" } ]) }
  in
  Lint.register rule;
  let b, _ = B.create ~name:"cu" ~params:[] ~ret:I32 () in
  let c = B.iconst b 1 in
  B.retv b I32 c;
  let fs = Lint.run_func (B.func b) in
  (* unregister by replacing with a no-op so other tests stay unaffected *)
  Lint.register { rule with check = (fun _ _ -> []) };
  Alcotest.(check int) "custom rule ran" 1 !saw;
  Alcotest.(check bool) "custom finding reported" true
    (List.exists (fun (fi : Lint.finding) -> fi.Lint.rule = "test-probe") fs)

(* ------------------------------------------------------------------ *)
(* Oracle integration: the Certify divergence class                    *)
(* ------------------------------------------------------------------ *)

(** A program whose miscompilation is dynamically invisible: the global
    defaults to zero, so deleting the extension of its [l2i] truncation
    never changes an observable — only the certifier can object. *)
let certify_direction_case () =
  let b, _ = B.create ~name:"main" ~params:[] ~ret:I32 () in
  let g = B.gload b I64 "g" in
  let x = B.mov b ~ty:I32 g in
  let three = B.iconst b 3 in
  let q = B.div b x three in
  B.retv b I32 q;
  Helpers.prog_of_func ~globals:[ ("g", I64) ] (B.func b)

let test_oracle_certify_class () =
  let sound = Sxe_fuzz.Oracle.check (Sxe_fuzz.Oracle.Ir (certify_direction_case ())) in
  Alcotest.(check (list string)) "sound compile has no failures" []
    (List.map (Format.asprintf "%a" Sxe_fuzz.Oracle.pp_failure) sound);
  let sabotaged =
    Sxe_fuzz.Oracle.check
      ~sabotage:(Sxe_fuzz.Inject.apply Sxe_fuzz.Inject.Skip_div_extend)
      (Sxe_fuzz.Oracle.Ir (certify_direction_case ()))
  in
  Alcotest.(check bool) "sabotage detected" true (sabotaged <> []);
  List.iter
    (fun (fl : Sxe_fuzz.Oracle.failure) ->
      if fl.Sxe_fuzz.Oracle.cls <> Sxe_fuzz.Oracle.Certify then
        Alcotest.failf "expected only certify-class failures, got %s"
          (Format.asprintf "%a" Sxe_fuzz.Oracle.pp_failure fl))
    sabotaged

(* ------------------------------------------------------------------ *)
(* Paranoid mode and the stage gate                                    *)
(* ------------------------------------------------------------------ *)

let test_stage_gate_raises () =
  let b, params = B.create ~name:"gate" ~params:[ I64 ] ~ret:F64 () in
  let x = B.mov b ~ty:I32 (List.hd params) in
  B.retv b F64 (B.i2d b x);
  let f = B.func b in
  match Check.stage_gate ~stage:"signext" f with
  | () -> Alcotest.fail "stage gate accepted a miscompile"
  | exception Check.Certification_failed msg ->
      Alcotest.(check bool) "message names the stage" true
        (let n = String.length msg in
         let rec go i = i + 7 <= n && (String.sub msg i 7 = "signext" || go (i + 1)) in
         go 0)

let test_paranoid_env_switch () =
  let reset () = Unix.putenv "SXE_CHECK" "0" in
  Fun.protect ~finally:reset (fun () ->
      Unix.putenv "SXE_CHECK" "0";
      Alcotest.(check bool) "off for \"0\"" false (Check.paranoid ());
      Unix.putenv "SXE_CHECK" "1";
      Alcotest.(check bool) "on for \"1\"" true (Check.paranoid ());
      (* a full compile under the paranoid gate must pass every stage *)
      let src = "void main() { int i = 0; while (i < 9) { i = i + 1; } checksum(i); }" in
      let prog = Sxe_lang.Frontend.compile src in
      ignore (Sxe_core.Pass.compile (Sxe_core.Config.new_all ()) prog))

(* ------------------------------------------------------------------ *)
(* JSON rendering                                                      *)
(* ------------------------------------------------------------------ *)

let test_json_rendering () =
  Alcotest.(check string) "no errors" "[]" (Check.errors_to_json []);
  let b, params = B.create ~name:"j\"q" ~params:[ I64 ] ~ret:F64 () in
  let x = B.mov b ~ty:I32 (List.hd params) in
  B.retv b F64 (B.i2d b x);
  let errs = Check.certify (B.func b) in
  let js = Check.errors_to_json errs in
  Alcotest.(check bool) "quotes escaped" true
    (let n = String.length js in
     let rec go i = i + 4 <= n && (String.sub js i 4 = "j\\\"q" || go (i + 1)) in
     go 0)

let suite =
  [
    Alcotest.test_case "every workload x variant certifies" `Quick
      test_workloads_certify;
    Alcotest.test_case "committed corpus certifies" `Quick test_corpus_certifies;
    Alcotest.test_case "loop subscript certifies after elimination" `Quick
      test_loop_subscript_certifies_after_elimination;
    Alcotest.test_case "miscompile rejected with location" `Quick
      test_miscompile_rejected_with_location;
    Alcotest.test_case "extension repairs the miscompile" `Quick
      test_extension_repairs_miscompile;
    Alcotest.test_case "garbage subscript rejected" `Quick
      test_garbage_subscript_rejected;
    Alcotest.test_case "witness follows the copy chain" `Quick
      test_witness_follows_copy_chain;
    Alcotest.test_case "loop-carried garbage rejected" `Quick
      test_loop_carried_garbage_rejected;
    Alcotest.test_case "lint: redundant-sext" `Quick test_lint_redundant_sext;
    Alcotest.test_case "lint: dead-justext" `Quick test_lint_dead_justext;
    Alcotest.test_case "lint: unreachable-block" `Quick test_lint_unreachable_block;
    Alcotest.test_case "lint: critical-edge" `Quick test_lint_critical_edge;
    Alcotest.test_case "lint: mov-chain" `Quick test_lint_mov_chain;
    Alcotest.test_case "lint: const-cmp" `Quick test_lint_const_cmp;
    Alcotest.test_case "lint: registry and severity" `Quick
      test_lint_registry_and_severity;
    Alcotest.test_case "lint: custom rule" `Quick test_lint_custom_rule;
    Alcotest.test_case "lint: registry built-ins frozen" `Quick
      test_lint_registry_frozen_builtins;
    Alcotest.test_case "lint: registry safe under domains" `Quick
      test_lint_registry_concurrent;
    Alcotest.test_case "oracle: certify divergence class" `Quick
      test_oracle_certify_class;
    Alcotest.test_case "stage gate raises on miscompile" `Quick
      test_stage_gate_raises;
    Alcotest.test_case "paranoid mode env switch" `Quick test_paranoid_env_switch;
    Alcotest.test_case "error JSON rendering" `Quick test_json_rendering;
  ]
