(** Pseudo-assembly emission tests: the Figure 4 code shapes. *)

open Sxe_ir
open Sxe_ir.Types
module B = Builder

let kernel =
  {|
global int mem;
void main() {
  int n = 64;
  int[] a = new int[n];
  short[] s = new short[n];
  for (int k = 0; k < n; k = k + 1) { a[k] = k; s[k] = k * 3; }
  mem = n;
  int t = 0;
  int i = mem;
  do { i = i - 1; t += a[i] + s[i]; } while (i > 0);
  double d = (double) t;
  checksum_double(d);
}
|}

let emit config arch =
  let prog = Sxe_lang.Frontend.compile kernel in
  let _ = Sxe_core.Pass.compile config prog in
  Sxe_codegen.Emit.emit_func ~arch (Prog.find_func prog "main")

let test_ia64_sxt_reduction () =
  let base = emit (Sxe_core.Config.baseline ()) Sxe_core.Arch.ia64 in
  let full = emit (Sxe_core.Config.new_all ()) Sxe_core.Arch.ia64 in
  let sxt a = Sxe_codegen.Emit.count_mnemonic a "sxt" in
  Alcotest.(check bool) "baseline emits several sxt" true (sxt base >= 4);
  Alcotest.(check bool) "full algorithm emits fewer sxt" true (sxt full < sxt base);
  (* array accesses use the fused shladd regardless *)
  Alcotest.(check bool) "shladd used" true (Sxe_codegen.Emit.count_mnemonic full "shladd" >= 2);
  (* optimized code is no larger *)
  Alcotest.(check bool) "code size shrinks" true
    (Sxe_codegen.Emit.size full <= Sxe_codegen.Emit.size base)

let test_ppc64_shapes () =
  let full = emit (Sxe_core.Config.new_all ~arch:Sxe_core.Arch.ppc64 ()) Sxe_core.Arch.ppc64 in
  (* Figure 4(c): the shift-and-clear EA computation *)
  Alcotest.(check bool) "rldic used" true (Sxe_codegen.Emit.count_mnemonic full "rldic" >= 2);
  (* implicit sign extensions: lwa for the 32-bit global read, lhax for
     the short array read *)
  Alcotest.(check bool) "lwa used" true (Sxe_codegen.Emit.count_mnemonic full "lwa" >= 1);
  Alcotest.(check bool) "lhax used" true (Sxe_codegen.Emit.count_mnemonic full "lhax" >= 1);
  (* PPC64 extensions spell extsw/extsh *)
  let txt = Sxe_codegen.Emit.to_string full in
  Alcotest.(check bool) "no IA64 mnemonics" true
    (not (String.length txt > 0 && Sxe_codegen.Emit.count_mnemonic full "sxt" > 0))

let test_lshr32_lowering () =
  (* bare IR: the unsigned shift is a single full-register shr.u — the
     zero extension it needs is explicit IR, not an emission artifact *)
  let b, params = B.create ~name:"main" ~params:[ I32 ] ~ret:I32 () in
  let x = List.hd params in
  let amt = B.iconst b 3 in
  let r = B.lshr b x amt in
  B.retv b I32 r;
  let f = B.func b in
  let asm = Sxe_codegen.Emit.emit_func ~arch:Sxe_core.Arch.ia64 f in
  Alcotest.(check int) "no implicit zxt4" 0 (Sxe_codegen.Emit.count_mnemonic asm "zxt4");
  Alcotest.(check bool) "shr.u emitted" true (Sxe_codegen.Emit.count_mnemonic asm "shr.u" >= 1);
  (* converted IR: the guard the converter inserts shows up as a zxt4 *)
  let b2, params2 = B.create ~name:"main" ~params:[ I32 ] ~ret:I32 () in
  let x2 = List.hd params2 in
  let amt2 = B.iconst b2 3 in
  let t = B.mov b2 ~ty:I32 x2 in
  ignore (B.zext b2 ~from:W32 t);
  let r2 = B.lshr b2 t amt2 in
  B.retv b2 I32 r2;
  let f2 = B.func b2 in
  let asm2 = Sxe_codegen.Emit.emit_func ~arch:Sxe_core.Arch.ia64 f2 in
  Alcotest.(check bool) "guarded form emits zxt4" true
    (Sxe_codegen.Emit.count_mnemonic asm2 "zxt4" >= 1);
  Alcotest.(check bool) "guarded form emits shr.u" true
    (Sxe_codegen.Emit.count_mnemonic asm2 "shr.u" >= 1)

let test_peephole_elides_redundant_ext () =
  (* back-to-back extensions of the same register: the second of each
     kind is provably redundant and must not be emitted *)
  let b, params = B.create ~name:"main" ~params:[ I32 ] ~ret:I32 () in
  let x = List.hd params in
  ignore (B.sext b ~from:W32 x);
  ignore (B.sext b ~from:W32 x);
  ignore (B.zext b ~from:W8 x);
  ignore (B.zext b ~from:W8 x);
  (* a zero extension from 8 implies sign-extension from any wider
     width: this sxt4 is redundant too *)
  ignore (B.sext b ~from:W32 x);
  B.retv b I32 x;
  let f = B.func b in
  let asm = Sxe_codegen.Emit.emit_func ~arch:Sxe_core.Arch.ia64 f in
  Alcotest.(check int) "one sxt4 survives" 1 (Sxe_codegen.Emit.count_mnemonic asm "sxt4");
  Alcotest.(check int) "one zxt1 survives" 1 (Sxe_codegen.Emit.count_mnemonic asm "zxt1");
  Alcotest.(check int) "two sext elisions" 2 asm.Sxe_codegen.Emit.elided_sext;
  Alcotest.(check int) "one zext elision" 1 asm.Sxe_codegen.Emit.elided_zext

let test_peephole_after_zero_load () =
  (* IA64 ld1 zero-extends: a following zxt1 (and a following sxt4) on
     the loaded register are both redundant *)
  let b, _ = B.create ~name:"main" ~params:[] ~ret:I32 () in
  let n = B.iconst b 8 in
  let a = B.newarr b AI8 n in
  let i = B.iconst b 0 in
  let v = B.arrload b ~lext:LZero AI8 a i in
  ignore (B.zext b ~from:W8 v);
  ignore (B.sext b ~from:W32 v);
  B.retv b I32 v;
  let f = B.func b in
  let asm = Sxe_codegen.Emit.emit_func ~arch:Sxe_core.Arch.ia64 f in
  Alcotest.(check int) "no zxt1 emitted" 0 (Sxe_codegen.Emit.count_mnemonic asm "zxt1");
  Alcotest.(check int) "no sxt4 emitted" 0 (Sxe_codegen.Emit.count_mnemonic asm "sxt4");
  Alcotest.(check int) "sext elided" 1 asm.Sxe_codegen.Emit.elided_sext;
  Alcotest.(check int) "zext elided" 1 asm.Sxe_codegen.Emit.elided_zext

let test_dummy_emits_nothing () =
  let b, params = B.create ~name:"main" ~params:[ I32 ] ~ret:I32 () in
  let x = List.hd params in
  let f0 =
    let b2, params2 = B.create ~name:"plain" ~params:[ I32 ] ~ret:I32 () in
    B.retv b2 I32 (List.hd params2);
    B.func b2
  in
  ignore (B.justext b x);
  B.retv b I32 x;
  let f = B.func b in
  let with_dummy = Sxe_codegen.Emit.emit_func ~arch:Sxe_core.Arch.ia64 f in
  let without = Sxe_codegen.Emit.emit_func ~arch:Sxe_core.Arch.ia64 f0 in
  Alcotest.(check int) "dummy adds no instructions" (Sxe_codegen.Emit.size without)
    (Sxe_codegen.Emit.size with_dummy)

let suite =
  [
    Alcotest.test_case "IA64 sxt reduction" `Quick test_ia64_sxt_reduction;
    Alcotest.test_case "PPC64 code shapes" `Quick test_ppc64_shapes;
    Alcotest.test_case "lshr32 lowering" `Quick test_lshr32_lowering;
    Alcotest.test_case "peephole elides redundant ext" `Quick
      test_peephole_elides_redundant_ext;
    Alcotest.test_case "peephole after zero-extending load" `Quick
      test_peephole_after_zero_load;
    Alcotest.test_case "dummies emit nothing" `Quick test_dummy_emits_nothing;
  ]
