(** Reaching definitions and UD/DU chain tests, including the property
    that incremental chain update under extension deletion matches a full
    rebuild. *)

open Sxe_ir
open Sxe_ir.Types
open Sxe_analysis
module B = Builder

(* Figure-3-like straight loop for hand-checked chains *)
let loop_func () =
  let b, params = B.create ~name:"f" ~params:[ I32 ] ~ret:I32 () in
  let start = List.hd params in
  let i = B.gload b I32 "mem" in
  let ext0 = B.sext b i in
  let h = B.new_block b and ex = B.new_block b in
  B.jmp b h;
  B.switch b h;
  let one = B.iconst b 1 in
  B.binop_to b Sub ~dst:i i one;
  let ext1 = B.sext b i in
  B.br b Gt i start ~ifso:h ~ifnot:ex;
  B.switch b ex;
  B.retv b I32 i;
  (B.func b, i, ext0, ext1)

let test_reaching_and_chains () =
  let f, i, ext0, ext1 = loop_func () in
  let chains = Chains.build f in
  (* defs of i reaching the loop's subtract: entry extension or loop
     extension *)
  let blk = Cfg.block f 1 in
  let sub = List.nth (Cfg.body blk) 1 in
  (match sub.Instr.op with Instr.Binop { op = Sub; _ } -> () | _ -> Alcotest.fail "shape");
  let defs = Chains.ud_at_instr chains sub i in
  let keys = List.sort compare (List.map Reaching.def_key defs) in
  Alcotest.(check (list int)) "defs of i at subtract"
    (List.sort compare [ ext0.Instr.iid; ext1.Instr.iid ])
    keys;
  (* the loop extension's value reaches the branch and the subtract and
     the return *)
  let uses = Chains.du_of_instr chains ext1 in
  Alcotest.(check int) "loop ext reaches 3 uses" 3 (List.length uses)

let test_incremental_deletion_hand () =
  let f, i, ext0, ext1 = loop_func () in
  let chains = Chains.build f in
  Chains.delete_same_reg_def chains ext1;
  (* now the subtract is reached by the entry ext and by itself (around
     the back edge) *)
  let blk = Cfg.block f 1 in
  let sub = List.hd (List.filter (fun (x : Instr.t) ->
      match x.Instr.op with Instr.Binop { op = Sub; _ } -> true | _ -> false) (Cfg.body blk))
  in
  let defs = Chains.ud_at_instr chains sub i in
  let keys = List.sort compare (List.map Reaching.def_key defs) in
  Alcotest.(check (list int)) "rewired defs"
    (List.sort compare [ ext0.Instr.iid; sub.Instr.iid ])
    keys;
  (* the incremental result matches a rebuild on the mutated function *)
  let rebuilt = Chains.build f in
  Alcotest.(check bool) "snapshot equal" true (Chains.snapshot chains = Chains.snapshot rebuilt)

(* ------------------------------------------------------------------ *)
(* Random-CFG property: incremental == rebuild, for every extension     *)
(* ------------------------------------------------------------------ *)

let build_random ?(allow_justext = true) nregs nblocks (recipe : int list) : Cfg.func =
  let b, _ = B.create ~name:"rand" ~params:[ I32 ] ~ret:I32 () in
  let regs = Array.init nregs (fun _ -> B.iconst b 7) in
  let blocks = Array.make nblocks 0 in
  for k = 1 to nblocks - 1 do
    blocks.(k) <- B.new_block b
  done;
  let r = ref recipe in
  let next () =
    match !r with
    | [] -> 3
    | x :: rest ->
        r := rest;
        abs x
  in
  let reg () = regs.(next () mod nregs) in
  let fill bid ~is_last =
    if bid = 0 then () else B.switch b blocks.(bid);
    let n_instr = next () mod 4 in
    for _ = 1 to n_instr do
      match next () mod 5 with
      | 0 -> ignore (B.sext b (reg ()))
      | 1 -> B.binop_to b Add ~dst:(reg ()) (reg ()) (reg ())
      | 2 -> B.mov_to b ~dst:(reg ()) ~src:(reg ()) I32
      | 3 -> B.binop_to b And ~dst:(reg ()) (reg ()) (reg ())
      | _ ->
          (* a JustExt marker's claim is only valid when placed by the
             compiler; generators of source-level IR must not emit it *)
          if allow_justext then ignore (B.justext b (reg ()))
          else B.binop_to b Sub ~dst:(reg ()) (reg ()) (reg ())
    done;
    if is_last then B.retv b I32 (reg ())
    else
      match next () mod 3 with
      | 0 -> B.jmp b blocks.(next () mod nblocks)
      | 1 -> B.retv b I32 (reg ())
      | _ ->
          B.br b Lt (reg ()) (reg ())
            ~ifso:blocks.(next () mod nblocks)
            ~ifnot:blocks.(next () mod nblocks)
  in
  for k = 0 to nblocks - 1 do
    fill k ~is_last:(k = nblocks - 1)
  done;
  let f = B.func b in
  Validate.check f;
  f

let all_sexts f =
  let out = ref [] in
  Cfg.iter_instrs (fun _ i -> if Instr.is_sext i.Instr.op then out := i :: !out) f;
  List.rev !out

let prop_incremental_matches_rebuild =
  let open QCheck in
  let gen = small_list int in
  Test.make ~name:"chain deletion: incremental = rebuild" ~count:300 gen (fun recipe ->
      let f = build_random 4 4 recipe in
      let chains = Chains.build f in
      (* delete every extension one by one, checking after each step *)
      List.for_all
        (fun ext ->
          Chains.delete_same_reg_def chains ext;
          Chains.snapshot chains = Chains.snapshot (Chains.build f))
        (all_sexts f))

(* property: UD and DU are mutually consistent after a build *)
let prop_chains_consistent =
  let open QCheck in
  Test.make ~name:"UD/DU mutual consistency" ~count:300 (small_list int) (fun recipe ->
      let f = build_random 5 5 recipe in
      let chains = Chains.build f in
      let ok = ref true in
      Cfg.iter_instrs
        (fun _ i ->
          List.iter
            (fun r ->
              List.iter
                (fun d ->
                  let dus = Chains.du_of_site chains d in
                  if
                    not
                      (List.exists
                         (function Chains.UIns u -> u.Instr.iid = i.Instr.iid | _ -> false)
                         dus)
                  then ok := false)
                (Chains.ud_at_instr chains i r))
            (Instr.uses i.Instr.op))
        f;
      !ok)

(* -- liveness -------------------------------------------------------- *)

let test_liveness () =
  let b, params = B.create ~name:"f" ~params:[ I32; I32 ] ~ret:I32 () in
  let x = List.hd params and y = List.nth params 1 in
  let t = B.add b x y in
  let dead = B.add b t t in
  let s = B.add b t x in
  B.retv b I32 s;
  let f = B.func b in
  let live = Liveness.compute f in
  (* nothing is live into the entry block beyond the parameters used *)
  let li = Liveness.live_in live 0 in
  Alcotest.(check bool) "x live-in" true (Sxe_util.Bitset.mem li x);
  Alcotest.(check bool) "y live-in" true (Sxe_util.Bitset.mem li y);
  let after = Liveness.live_after_each live 0 in
  (* t is live after its definition; the dead add's result is not *)
  let t_def = List.nth (Cfg.body (Cfg.block f 0)) 0 in
  let dead_def = List.nth (Cfg.body (Cfg.block f 0)) 1 in
  let after_of iid = List.assoc iid after in
  Alcotest.(check bool) "t live after def" true (Sxe_util.Bitset.mem (after_of t_def.Instr.iid) t);
  Alcotest.(check bool) "dead result not live" false
    (Sxe_util.Bitset.mem (after_of dead_def.Instr.iid) dead);
  Alcotest.(check bool) "s live at end" true
    (Sxe_util.Bitset.mem (Liveness.live_out live 0) s = false)
(* s is consumed by the terminator inside the block; block live-out is
   empty since there are no successors *)

let test_liveness_across_loop () =
  let b, params = B.create ~name:"g" ~params:[ I32 ] ~ret:I32 () in
  let x = List.hd params in
  let acc = B.iconst b 0 in
  let h = B.new_block b and body = B.new_block b and ex = B.new_block b in
  B.jmp b h;
  B.switch b h;
  B.br b Lt acc x ~ifso:body ~ifnot:ex;
  B.switch b body;
  B.binop_to b Add ~dst:acc acc x;
  B.jmp b h;
  B.switch b ex;
  B.retv b I32 acc;
  let f = B.func b in
  let live = Liveness.compute f in
  (* x is live around the loop; acc is live into the header *)
  Alcotest.(check bool) "x live into body" true
    (Sxe_util.Bitset.mem (Liveness.live_in live body) x);
  Alcotest.(check bool) "acc live into header" true
    (Sxe_util.Bitset.mem (Liveness.live_in live h) acc)

let suite =
  [
    Alcotest.test_case "liveness basics" `Quick test_liveness;
    Alcotest.test_case "liveness across loop" `Quick test_liveness_across_loop;
    Alcotest.test_case "reaching defs and chains" `Quick test_reaching_and_chains;
    Alcotest.test_case "incremental deletion (hand)" `Quick test_incremental_deletion_hand;
    QCheck_alcotest.to_alcotest prop_incremental_matches_rebuild;
    QCheck_alcotest.to_alcotest prop_chains_consistent;
  ]
