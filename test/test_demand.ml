(** Unit tests for the paper's first algorithm (backward demand dataflow),
    exercising exactly the limitations Section 1 describes. *)

open Sxe_ir
open Sxe_ir.Types
module B = Builder

let count_sext = Sxe_core.Eliminate.count_sext32

let run_demand f =
  let stats = Sxe_core.Stats.create () in
  Sxe_core.Demand.run f stats;
  Validate.check f;
  stats

let test_keeps_latest () =
  (* two extensions of the same register before one requiring use: only
     the latest survives (limitation 3's mechanism) *)
  let b, params = B.create ~name:"f" ~params:[ I32 ] ~ret:F64 () in
  let x = List.hd params in
  let t = B.gload b I32 "g" in
  ignore (B.sext b t);
  B.binop_to b Add ~dst:t t x;
  ignore (B.sext b t);
  let d = B.i2d b t in
  B.retv b F64 d;
  let f = B.func b in
  ignore (run_demand f);
  Alcotest.(check int) "one extension left" 1 (count_sext f);
  (* and it is the one immediately before the conversion *)
  let body = (Cfg.body (Cfg.block f 0)) in
  let idx_of p =
    let rec go k = function
      | [] -> -1
      | (i : Instr.t) :: rest -> if p i.Instr.op then k else go (k + 1) rest
    in
    go 0 body
  in
  Alcotest.(check bool) "extension after the add" true
    (idx_of Instr.is_sext32 > idx_of (function Instr.Binop _ -> true | _ -> false))

let test_no_demand_no_extension () =
  (* value only feeds wrap-tolerant operations and a 32-bit store: every
     extension dies *)
  let b, params = B.create ~name:"f" ~params:[ I32 ] ~ret:I32 () in
  let x = List.hd params in
  let t = B.gload b I32 "g" in
  ignore (B.sext b t);
  B.binop_to b Add ~dst:t t x;
  ignore (B.sext b t);
  B.gstore b I32 "h" t;
  B.retv b I32 x;
  let f = B.func b in
  ignore (run_demand f);
  Alcotest.(check int) "all extensions gone" 0 (count_sext f)

let test_array_subscript_always_demanded () =
  (* limitation 1: the first algorithm cannot remove a subscript
     extension, whatever the index's provenance *)
  let b, params = B.create ~name:"f" ~params:[ Ref ] ~ret:I32 () in
  let a = List.hd params in
  let i = B.iconst b 3 in
  ignore (B.sext b i);
  let v = B.arrload b AI32 a i in
  B.retv b I32 v;
  let f = B.func b in
  ignore (run_demand f);
  Alcotest.(check int) "subscript extension kept" 1 (count_sext f)

let test_demand_through_transparent_ops () =
  (* limitation 2's flip side: demand propagates through add/and chains to
     the extension that actually feeds them *)
  let b, _ = B.create ~name:"f" ~params:[] ~ret:F64 () in
  let t = B.gload b I32 "g" in
  ignore (B.sext b t);
  let one = B.iconst b 1 in
  let u = B.add b t one in
  let v = B.add b u one in
  let d = B.i2d b v in
  B.retv b F64 d;
  let f = B.func b in
  ignore (run_demand f);
  (* the i2d's demand reaches the load's extension through two adds *)
  Alcotest.(check int) "extension survives the chain" 1 (count_sext f)

let test_kill_at_redefinition () =
  (* demand dies at a redefinition: an extension before an overwrite is
     useless even with a requiring use below *)
  let b, _ = B.create ~name:"f" ~params:[] ~ret:F64 () in
  let t = B.gload b I32 "g" in
  ignore (B.sext b t);
  let z = B.iconst b 5 in
  B.mov_to b ~dst:t ~src:z I32;
  let d = B.i2d b t in
  B.retv b F64 d;
  let f = B.func b in
  ignore (run_demand f);
  Alcotest.(check int) "pre-overwrite extension gone" 0 (count_sext f)

let test_loop_demand () =
  (* Figure 3's footnote behaviour in miniature: the accumulator's
     extension stays in the loop because the requiring use follows it *)
  let b, params = B.create ~name:"f" ~params:[ I32 ] ~ret:F64 () in
  let n = List.hd params in
  let t = B.iconst b 0 in
  let i = B.iconst b 0 in
  let h = B.new_block b and body = B.new_block b and ex = B.new_block b in
  B.jmp b h;
  B.switch b h;
  B.br b Lt i n ~ifso:body ~ifnot:ex;
  B.switch b body;
  B.binop_to b Add ~dst:t t i;
  ignore (B.sext b t);
  let one = B.iconst b 1 in
  B.binop_to b Add ~dst:i i one;
  ignore (B.sext b i);
  B.jmp b h;
  B.switch b ex;
  let d = B.i2d b t in
  B.retv b F64 d;
  let f = B.func b in
  ignore (run_demand f);
  (* t's extension survives (demanded by the post-loop conversion around
     the back edge); i's dies (only compares and adds consume it) *)
  Alcotest.(check int) "exactly one survives" 1 (count_sext f)

let suite =
  [
    Alcotest.test_case "keeps the latest extension" `Quick test_keeps_latest;
    Alcotest.test_case "no demand, no extension" `Quick test_no_demand_no_extension;
    Alcotest.test_case "array subscripts always demanded" `Quick
      test_array_subscript_always_demanded;
    Alcotest.test_case "demand through transparent ops" `Quick
      test_demand_through_transparent_ops;
    Alcotest.test_case "kill at redefinition" `Quick test_kill_at_redefinition;
    Alcotest.test_case "loop demand" `Quick test_loop_demand;
  ]
