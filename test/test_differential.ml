(** Differential property tests, driven by the [sxe_fuzz] subsystem.

    Random MiniJ programs and raw-IR CFGs must behave identically
    (output, checksum, trap, return value) under every optimization
    variant and on both architecture models. The generators, oracle and
    shrinker all live in [lib/fuzz]; this file only binds them to QCheck
    seeds so failures reproduce from the printed seed alone and are
    reported as a minimized program. *)

open QCheck
open Sxe_fuzz

let fuel = 400_000L
let seed_gen = Gen.int_bound 0x3FFFFFFF

(** Arbitrary over case seeds; the printer shows the derived program so
    a bare QCheck counterexample is already actionable. *)
let arb_minij =
  make
    ~print:(fun s -> Printf.sprintf "seed %d:\n%s" s (Gen_minij.of_seed s))
    seed_gen

let arb_ir =
  make
    ~print:(fun s ->
      Printf.sprintf "seed %d:\n%s" s
        (Sxe_ir.Printer.prog_to_string (Gen_ir.of_seed s)))
    seed_gen

let minij_case s = Oracle.Minij (Gen_minij.of_seed s)
let ir_case s = Oracle.Ir (Gen_ir.of_seed s)

let mutated_case s =
  let rng = Rng.create ~seed:s in
  let f = Gen_ir.generate rng in
  ignore (Mutate.mutate_n rng 3 f);
  Sxe_ir.Validate.check f;
  Oracle.Ir (Gen_ir.wrap f)

(** Run the oracle; on divergence, shrink against the first witness and
    fail with the seed, the classified failures, and the minimized
    program (satisfies the "print seed + shrunk offender" rule). *)
let oracle_holds ?archs ?variants (case : Oracle.case) (seed : int) =
  match Oracle.check ~fuel ?archs ?variants case with
  | [] -> true
  | fs ->
      let o =
        {
          Driver.default_options with
          archs =
            (match archs with
            | Some a -> a
            | None -> [ Sxe_core.Arch.ia64 ]);
        }
      in
      let shrunk = Driver.shrink_failure o case fs in
      Test.fail_reportf "seed %d diverged:@.%a@.shrunk to %d instructions:@.%s"
        seed
        (Format.pp_print_list Oracle.pp_failure)
        fs
        (Shrink.instr_total shrunk)
        (Sxe_ir.Printer.prog_to_string shrunk)

let prop_all_variants_equivalent =
  Test.make ~name:"all variants observationally equal (IA64)" ~count:120 arb_minij
    (fun s -> oracle_holds (minij_case s) s)

let prop_ppc64_equivalent =
  Test.make ~name:"all variants observationally equal (PPC64)" ~count:60 arb_minij
    (fun s -> oracle_holds ~archs:[ Sxe_core.Arch.ppc64 ] (minij_case s) s)

let prop_small_maxlen_equivalent =
  Test.make ~name:"aggressive maxlen stays sound" ~count:60 arb_minij (fun s ->
      oracle_holds
        ~variants:(fun _ ->
          [
            Sxe_core.Config.new_all ~maxlen:0x7fff0001L ();
            Sxe_core.Config.array ~maxlen:65536L ();
          ])
        (minij_case s) s)

let prop_full_never_worse_than_baseline =
  (* with baseline and the full algorithm both present, the oracle's
     cost check fires whenever the full algorithm executes more 32-bit
     extensions than baseline *)
  Test.make ~name:"new algorithm never executes more extensions than baseline" ~count:80
    arb_minij (fun s ->
      oracle_holds
        ~variants:(fun arch ->
          [ Sxe_core.Config.baseline ~arch (); Sxe_core.Config.new_all ~arch () ])
        (minij_case s) s)

let prop_random_ir_pipeline =
  Test.make ~name:"random IR CFGs survive the full pipeline" ~count:100 arb_ir
    (fun s -> oracle_holds (ir_case s) s)

let prop_mutated_ir_pipeline =
  Test.make ~name:"mutated IR CFGs survive the full pipeline" ~count:100 arb_ir
    (fun s -> oracle_holds (mutated_case s) s)

(* Pipeline-internals properties: these exercise entry points the oracle
   does not (step 2 alone, re-running elimination, the gen-def
   invariant), so they run the interpreter directly. *)

let outcome_of mode prog = Sxe_vm.Interp.run ~mode ~fuel ~count_cycles:false prog

let prop_step2_only_preserves =
  Test.make ~name:"step 2 alone preserves semantics" ~count:120 arb_minij (fun s ->
      let src = Gen_minij.of_seed s in
      let reference = Helpers.reference_outcome ~fuel src in
      let prog = Sxe_lang.Frontend.compile src in
      let stats = Sxe_core.Stats.create () in
      Sxe_ir.Prog.iter_funcs
        (fun f -> Sxe_core.Convert.run (Sxe_core.Config.baseline ()) f stats)
        prog;
      Sxe_opt.Pipeline.run prog;
      Sxe_ir.Validate.check_prog prog;
      Sxe_vm.Interp.equivalent reference (outcome_of `Faithful prog))

let prop_pipeline_idempotent =
  Test.make ~name:"re-running step 3 on optimized code stays sound" ~count:60 arb_minij
    (fun s ->
      let src = Gen_minij.of_seed s in
      let reference = Helpers.reference_outcome ~fuel src in
      let prog = Sxe_lang.Frontend.compile src in
      let _ = Sxe_core.Pass.compile (Sxe_core.Config.new_all ()) prog in
      (* run the elimination machinery a second time over the result *)
      let stats = Sxe_core.Stats.create () in
      Sxe_ir.Prog.iter_funcs
        (fun f -> ignore (Sxe_core.Eliminate.run (Sxe_core.Config.new_all ()) f stats))
        prog;
      Sxe_ir.Validate.check_prog prog;
      Sxe_vm.Interp.equivalent reference (outcome_of `Faithful prog))

let prop_gen_def_invariant =
  Test.make ~name:"after step 1, faithful = canonical execution" ~count:80 arb_minij
    (fun s ->
      (* the gen-def invariant: every 32-bit register is extended at every
         point, so the 64-bit machine and the reference 32-bit machine
         agree instruction by instruction *)
      let prog = Sxe_lang.Frontend.compile (Gen_minij.of_seed s) in
      let stats = Sxe_core.Stats.create () in
      Sxe_ir.Prog.iter_funcs
        (fun f -> Sxe_core.Convert.run (Sxe_core.Config.baseline ()) f stats)
        prog;
      let a = outcome_of `Faithful prog in
      let b = outcome_of `Canonical (Sxe_ir.Clone.clone_prog prog) in
      Sxe_vm.Interp.equivalent a b)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_random_ir_pipeline;
    QCheck_alcotest.to_alcotest prop_mutated_ir_pipeline;
    QCheck_alcotest.to_alcotest prop_all_variants_equivalent;
    QCheck_alcotest.to_alcotest prop_pipeline_idempotent;
    QCheck_alcotest.to_alcotest prop_gen_def_invariant;
    QCheck_alcotest.to_alcotest prop_ppc64_equivalent;
    QCheck_alcotest.to_alcotest prop_small_maxlen_equivalent;
    QCheck_alcotest.to_alcotest prop_full_never_worse_than_baseline;
  ]
