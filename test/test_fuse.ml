(** Superinstruction-fusion tests: selection parsing, the branch-target
    barrier (a fused group never shadows a jump target), bit-identical
    fuel exhaustion mid-superinstruction, and the (generation, fusion
    selection) keying of the decode cache. The broad three-engine parity
    sweeps live in [Test_precode] and the fuzz oracle; these cases pin
    the fusion-specific edges. *)

open Sxe_ir
open Sxe_ir.Types
module B = Builder

let outcome : Sxe_vm.Interp.outcome Alcotest.testable =
  let open Sxe_vm.Interp in
  let pp ppf (o : outcome) =
    Format.fprintf ppf
      "{trap=%s; ret=%s; checksum=%Ld; output=%S; executed=%Ld; sext32=%Ld; \
       sext_sub=%Ld; zext32=%Ld; zext_sub=%Ld; cycles=%Ld}"
      (Option.value ~default:"none" o.trap)
      (match o.ret with None -> "none" | Some v -> Int64.to_string v)
      o.checksum o.output o.executed o.sext32 o.sext_sub o.zext32 o.zext_sub
      o.cycles
  in
  Alcotest.testable pp ( = )

(** All three engines — structural, unfused precode, fused precode — on
    the same program; every outcome field must agree. *)
let check3 ?fuel msg (p : Prog.t) =
  let st = Sxe_vm.Interp.run ?fuel ~engine:`Structural p in
  let pre = Sxe_vm.Interp.run ?fuel ~engine:`Precode ~fuse:Sxe_vm.Fuse.Off p in
  let fused = Sxe_vm.Interp.run ?fuel ~engine:`Precode ~fuse:Sxe_vm.Fuse.All p in
  Alcotest.check outcome (msg ^ ": structural vs precode") st pre;
  Alcotest.check outcome (msg ^ ": precode vs fused") pre fused;
  fused

(** A 10-iteration counting loop whose body flattens to
    [Const; Add; Mov; Br] — the compress loop-step shape: the const-arith
    pair fuses, the mov-br pair fuses, and the loop head is a branch
    target that heads a fused group. *)
let counting_loop () =
  let b, _ = B.create ~name:"main" ~params:[] () in
  let i = B.iconst b 0 in
  let lim = B.iconst b 10 in
  let body = B.new_block b in
  let exit_ = B.new_block b in
  B.jmp b body;
  B.switch b body;
  let one = B.iconst b 1 in
  let t = B.add b i one in
  B.mov_to b ~dst:i ~src:t I32;
  B.br b Lt i lim ~ifso:body ~ifnot:exit_;
  B.switch b exit_;
  ignore (B.call b "checksum" [ (i, I32) ]);
  B.ret b;
  Helpers.prog_of_func (B.func b)

let main_func (p : Prog.t) = Hashtbl.find p.Prog.funcs p.Prog.main

(* ------------------------------------------------------------------ *)
(* Selection parsing                                                   *)
(* ------------------------------------------------------------------ *)

let test_parse () =
  Alcotest.(check bool) "all" true (Sxe_vm.Fuse.parse "all" = Ok Sxe_vm.Fuse.All);
  Alcotest.(check bool) "off" true (Sxe_vm.Fuse.parse "off" = Ok Sxe_vm.Fuse.Off);
  Alcotest.(check bool) "list" true
    (Sxe_vm.Fuse.parse "mov-jmp,cmp-br" = Ok (Sxe_vm.Fuse.Rules [ "mov-jmp"; "cmp-br" ]));
  (match Sxe_vm.Fuse.parse "mov-jmp,typo-rule" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown rule name accepted");
  (* every advertised rule name round-trips *)
  List.iter
    (fun r ->
      match Sxe_vm.Fuse.parse r with
      | Ok (Sxe_vm.Fuse.Rules [ r' ]) when r' = r -> ()
      | _ -> Alcotest.failf "rule %S does not parse to itself" r)
    Sxe_vm.Fuse.rule_names

let test_rules_subset () =
  (* a single-rule selection fuses only under that rule, and still
     matches the other engines bit for bit *)
  let p = counting_loop () in
  let sel = Sxe_vm.Fuse.Rules [ "mov-br" ] in
  let out = Sxe_vm.Interp.run ~engine:`Precode ~fuse:sel p in
  let st = Sxe_vm.Interp.run ~engine:`Structural p in
  Alcotest.check outcome "single rule vs structural" st out;
  let img = Sxe_vm.Precode.get_decoded ~fuse:sel ~canonical:false (main_func p) in
  let stats = Sxe_vm.Precode.fusion_stats img in
  Alcotest.(check bool) "mov-br fired" true (List.mem_assoc "mov-br" stats);
  List.iter
    (fun (rule, n) ->
      if rule <> "mov-br" && n > 0 then
        Alcotest.failf "rule %S fired %d times under Rules [mov-br]" rule n)
    stats

(* ------------------------------------------------------------------ *)
(* Branch targets                                                      *)
(* ------------------------------------------------------------------ *)

(* disasm lines are [%4d %-5s %s %s]: offset, a [B<bid>:] block-start
   marker, a [.] on slots shadowed by a preceding fused group, opcode. *)
let shadowed_block_starts listing =
  List.filter
    (fun line ->
      String.length line > 11 && line.[11] = '.'
      && (let mark = String.trim (String.sub line 5 5) in
          String.length mark > 0 && mark.[0] = 'B'))
    (String.split_on_char '\n' listing)

let test_branch_target_barrier () =
  (* A fused group must never shadow a branch target: jumping into the
     middle of a group would otherwise skip or double-charge its head
     constituents. A block start may HEAD a group (execution enters at
     the head either way) — the counting loop's body block does exactly
     that, so also assert fusion actually happened there. *)
  let p = counting_loop () in
  ignore (check3 "counting loop" p);
  let img = Sxe_vm.Precode.get_decoded ~fuse:Sxe_vm.Fuse.All ~canonical:false (main_func p) in
  Alcotest.(check bool) "loop fused at all" true (Sxe_vm.Precode.fused_total img > 0);
  Alcotest.(check (list string)) "no shadowed block start (hand-built loop)" []
    (shadowed_block_starts (Sxe_vm.Precode.disasm img));
  (* ... and across every optimized workload function *)
  List.iter
    (fun (w : Sxe_workloads.Registry.t) ->
      let prog = Sxe_lang.Frontend.compile w.source in
      ignore (Sxe_core.Pass.compile (Sxe_core.Config.new_all ()) prog);
      Prog.iter_funcs
        (fun f ->
          let img = Sxe_vm.Precode.get_decoded ~fuse:Sxe_vm.Fuse.All ~canonical:false f in
          match shadowed_block_starts (Sxe_vm.Precode.disasm img) with
          | [] -> ()
          | l ->
              Alcotest.failf "%s/%s: fused group shadows a branch target:\n%s" w.name
                f.Cfg.name (String.concat "\n" l))
        prog)
    (Sxe_workloads.Registry.all ~scale:1 ())

(* ------------------------------------------------------------------ *)
(* Fuel exhaustion mid-superinstruction                                *)
(* ------------------------------------------------------------------ *)

let test_fuel_mid_superinstruction () =
  (* Sweep the fuel budget across every instruction boundary of the
     fused loop: each constituent of a superinstruction ticks and traps
     exactly where its plain counterpart would, so all three engines
     must agree on the truncated counters for every cutoff — including
     cutoffs that land in the middle of a fused group. *)
  let p = counting_loop () in
  let full = check3 "unbounded" p in
  let total = Int64.to_int full.Sxe_vm.Interp.executed in
  Alcotest.(check bool) "loop runs long enough to sweep" true (total > 20);
  for fuel = 1 to total + 1 do
    let out = check3 ~fuel:(Int64.of_int fuel) (Printf.sprintf "fuel=%d" fuel) p in
    if fuel < total then
      Alcotest.(check (option string))
        (Printf.sprintf "fuel=%d traps" fuel)
        (Some "fuel-exhausted") out.Sxe_vm.Interp.trap
    else
      Alcotest.(check (option string))
        (Printf.sprintf "fuel=%d completes" fuel)
        None out.Sxe_vm.Interp.trap
  done

(* ------------------------------------------------------------------ *)
(* The zext fusion pairs: byte-histogram idiom under a fuel sweep      *)
(* ------------------------------------------------------------------ *)

let zext_load_loop () =
  (* Loop body: [ArrStore; Zext; ArrLoad; Add; Add; Mov; Br] — the
     [Zext; ArrLoad] pair fuses as zext-load (masked subscript), and the
     tail block reads back through an [ArrLoad; Zext] pair (load-zext). *)
  let b, _ = B.create ~name:"main" ~params:[] () in
  let n = B.iconst b 8 in
  let a = B.newarr b AI32 n in
  let i = B.iconst b 0 in
  let one = B.iconst b 1 in
  let s = B.iconst b 0 in
  let body = B.new_block b in
  let exit_ = B.new_block b in
  B.jmp b body;
  B.switch b body;
  B.arrstore b AI32 a i i;
  ignore (B.zext b i);
  let v = B.arrload b AI32 a i in
  B.binop_to b Add ~dst:s s v;
  let t = B.add b i one in
  B.mov_to b ~dst:i ~src:t I32;
  B.br b Lt i n ~ifso:body ~ifnot:exit_;
  B.switch b exit_;
  let i3 = B.iconst b 3 in
  let w = B.arrload b AI32 a i3 in
  ignore (B.zext b w);
  ignore (B.call b "checksum" [ (s, I32) ]);
  ignore (B.call b "checksum" [ (w, I32) ]);
  B.ret b;
  Helpers.prog_of_func (B.func b)

let test_fuel_through_zext_load () =
  let p = zext_load_loop () in
  let img =
    Sxe_vm.Precode.get_decoded ~fuse:Sxe_vm.Fuse.All ~canonical:false
      (main_func p)
  in
  let stats = Sxe_vm.Precode.fusion_stats img in
  let hits rule = try List.assoc rule stats with Not_found -> 0 in
  Alcotest.(check bool) "zext-load fused" true (hits "zext-load" >= 1);
  Alcotest.(check bool) "load-zext fused" true (hits "load-zext" >= 1);
  (* sweep every cutoff: ticks inside the fused groups must land where
     the plain instruction sequence would put them *)
  let full = check3 "zext loop unbounded" p in
  Alcotest.(check int64) "loop observes zero extensions" 9L
    full.Sxe_vm.Interp.zext32;
  let total = Int64.to_int full.Sxe_vm.Interp.executed in
  for fuel = 1 to total + 1 do
    let out = check3 ~fuel:(Int64.of_int fuel) (Printf.sprintf "fuel=%d" fuel) p in
    if fuel < total then
      Alcotest.(check (option string))
        (Printf.sprintf "fuel=%d traps" fuel)
        (Some "fuel-exhausted") out.Sxe_vm.Interp.trap
    else
      Alcotest.(check (option string))
        (Printf.sprintf "fuel=%d completes" fuel)
        None out.Sxe_vm.Interp.trap
  done

(* ------------------------------------------------------------------ *)
(* Cache keying                                                        *)
(* ------------------------------------------------------------------ *)

let test_cache_keyed_by_selection () =
  (* The per-function cache is keyed by (generation, mode, fusion
     selection): switching the selection between runs must re-decode —
     never serve the other selection's image — and asking again with the
     same selection must hit. *)
  let p = counting_loop () in
  let f = main_func p in
  let fused1 = Sxe_vm.Precode.get_decoded ~fuse:Sxe_vm.Fuse.All ~canonical:false f in
  let off = Sxe_vm.Precode.get_decoded ~fuse:Sxe_vm.Fuse.Off ~canonical:false f in
  let fused2 = Sxe_vm.Precode.get_decoded ~fuse:Sxe_vm.Fuse.All ~canonical:false f in
  Alcotest.(check bool) "fused image has groups" true
    (Sxe_vm.Precode.fused_total fused1 > 0);
  Alcotest.(check bool) "off image has none" true
    (Sxe_vm.Precode.fused_total off = 0);
  Alcotest.(check bool) "same selection hits the cache" true (fused1 == fused2);
  Alcotest.(check bool) "selections get distinct images" true (not (fused1 == off));
  (* a subset selection is its own key, distinct from All *)
  let sub =
    Sxe_vm.Precode.get_decoded ~fuse:(Sxe_vm.Fuse.Rules [ "mov-br" ]) ~canonical:false f
  in
  Alcotest.(check bool) "subset selection is a distinct image" true
    (not (sub == fused1) && not (sub == off));
  (* mutation invalidates every image *)
  Cfg.iter_instrs
    (fun blk i ->
      match i.Instr.op with
      | Instr.Const { dst; ty; v = 10L } -> Cfg.set_op blk i (Instr.Const { dst; ty; v = 3L })
      | _ -> ())
    f;
  let fused3 = Sxe_vm.Precode.get_decoded ~fuse:Sxe_vm.Fuse.All ~canonical:false f in
  Alcotest.(check bool) "mutation drops the cached image" true (not (fused3 == fused1));
  ignore (check3 "after mutation" p)

let suite =
  [
    Alcotest.test_case "selection parsing" `Quick test_parse;
    Alcotest.test_case "single-rule selection" `Quick test_rules_subset;
    Alcotest.test_case "fused groups never shadow a branch target" `Quick
      test_branch_target_barrier;
    Alcotest.test_case "fuel exhaustion mid-superinstruction" `Quick
      test_fuel_mid_superinstruction;
    Alcotest.test_case "fuel sweep through fused zext-load/load-zext" `Quick
      test_fuel_through_zext_load;
    Alcotest.test_case "decode cache keyed by fusion selection" `Quick
      test_cache_keyed_by_selection;
  ]
