(** Unit tests for the [lib/fuzz] subsystem: the deterministic PRNG, the
    MiniJ/IR generators, the mutation engine, the breakage injectors, the
    differential oracle (including its self-test sabotage hooks), the
    structural shrinker, and corpus persistence. *)

open Sxe_fuzz

let fuel = 200_000L

(* ------------------------------------------------------------------ *)
(* Rng                                                                  *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:99 and b = Rng.create ~seed:99 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next64 a) (Rng.next64 b)
  done;
  let c = Rng.create ~seed:100 in
  Alcotest.(check bool) "different seed, different stream" true
    (Rng.next64 (Rng.create ~seed:99) <> Rng.next64 c)

let test_rng_bounds () =
  let r = Rng.create ~seed:5 in
  for _ = 1 to 1000 do
    let v = Rng.int r 7 in
    Alcotest.(check bool) "int in [0,7)" true (v >= 0 && v < 7);
    let w = Rng.range r 3 9 in
    Alcotest.(check bool) "range in [3,9]" true (w >= 3 && w <= 9)
  done

let test_rng_frequency () =
  let r = Rng.create ~seed:7 in
  let hits = Array.make 2 0 in
  for _ = 1 to 2000 do
    let k = Rng.frequency r [ (9, 0); (1, 1) ] in
    hits.(k) <- hits.(k) + 1
  done;
  Alcotest.(check bool) "9:1 weighting respected" true (hits.(0) > hits.(1) * 4)

let test_rng_shuffle () =
  let r = Rng.create ~seed:11 in
  let xs = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let ys = Rng.shuffle r xs in
  Alcotest.(check (list int)) "permutation" xs (List.sort compare ys)

let test_case_seed_distinct () =
  let seen = Hashtbl.create 64 in
  for i = 0 to 999 do
    Hashtbl.replace seen (Rng.case_seed ~seed:42 i) ()
  done;
  Alcotest.(check int) "1000 distinct case seeds" 1000 (Hashtbl.length seen)

(* ------------------------------------------------------------------ *)
(* Generators                                                           *)
(* ------------------------------------------------------------------ *)

let test_gen_minij_deterministic () =
  Alcotest.(check string) "same seed, same program" (Gen_minij.of_seed 123)
    (Gen_minij.of_seed 123);
  Alcotest.(check bool) "different seed, different program" true
    (Gen_minij.of_seed 123 <> Gen_minij.of_seed 124)

let test_gen_minij_compiles () =
  for s = 0 to 30 do
    let src = Gen_minij.of_seed s in
    let prog = Sxe_lang.Frontend.compile src in
    Sxe_ir.Validate.check_prog prog;
    let out = Sxe_vm.Interp.run ~mode:`Canonical ~fuel ~count_cycles:false prog in
    Alcotest.(check (option string))
      (Printf.sprintf "seed %d runs clean" s)
      None out.Sxe_vm.Interp.trap
  done

let test_gen_minij_features () =
  (* with every feature off, the program still compiles and runs *)
  let rng = Rng.create ~seed:3 in
  let src = Gen_minij.generate ~features:Gen_minij.minimal_features ~size:4 rng in
  let prog = Sxe_lang.Frontend.compile src in
  let out = Sxe_vm.Interp.run ~mode:`Canonical ~fuel ~count_cycles:false prog in
  Alcotest.(check (option string)) "minimal featureset runs clean" None
    out.Sxe_vm.Interp.trap

let test_gen_ir_valid () =
  for s = 0 to 50 do
    let f = Gen_ir.generate (Rng.create ~seed:s) in
    Alcotest.(check (list string))
      (Printf.sprintf "seed %d validates" s)
      [] (Sxe_ir.Validate.errors f);
    let p = Gen_ir.wrap f in
    let out = Sxe_vm.Interp.run ~mode:`Canonical ~fuel ~count_cycles:false p in
    (* generated functions are termination-safe by construction: traps
       other than fuel exhaustion would indicate a generator bug *)
    Alcotest.(check (option string))
      (Printf.sprintf "seed %d terminates" s)
      None out.Sxe_vm.Interp.trap
  done

(* ------------------------------------------------------------------ *)
(* Mutation engine                                                      *)
(* ------------------------------------------------------------------ *)

let test_mutations_preserve_validity () =
  List.iter
    (fun kind ->
      let applied = ref 0 in
      for s = 0 to 20 do
        let rng = Rng.create ~seed:(1000 + s) in
        let f = Gen_ir.generate rng in
        if Mutate.apply rng kind f then begin
          incr applied;
          Alcotest.(check (list string))
            (Printf.sprintf "%s keeps IR valid (seed %d)" (Mutate.string_of_kind kind) s)
            [] (Sxe_ir.Validate.errors f);
          Alcotest.(check (list string))
            (Printf.sprintf "%s keeps definite assignment (seed %d)"
               (Mutate.string_of_kind kind) s)
            [] (Sxe_ir.Validate.def_errors f)
        end
      done;
      Alcotest.(check bool)
        (Printf.sprintf "%s applies at least once" (Mutate.string_of_kind kind))
        true (!applied > 0))
    Mutate.all_kinds

let test_permute_blocks_preserves_behaviour () =
  (* block permutation is an isomorphism: canonical behaviour is identical *)
  let tried = ref 0 in
  for s = 0 to 20 do
    let rng = Rng.create ~seed:(2000 + s) in
    let f = Gen_ir.generate rng in
    let g = Sxe_ir.Clone.clone_func f in
    if Mutate.apply rng Mutate.Permute_blocks g then begin
      incr tried;
      let run h =
        Sxe_vm.Interp.run ~mode:`Canonical ~fuel ~count_cycles:false
          (Gen_ir.wrap (Sxe_ir.Clone.clone_func h))
      in
      Alcotest.(check bool)
        (Printf.sprintf "permutation preserves behaviour (seed %d)" s)
        true
        (Sxe_vm.Interp.equivalent (run f) (run g))
    end
  done;
  Alcotest.(check bool) "permutation applied at least once" true (!tried > 0)

let test_breakages_detected () =
  List.iter
    (fun b ->
      let caught = ref 0 and applied = ref 0 in
      for s = 0 to 30 do
        let rng = Rng.create ~seed:(3000 + s) in
        let f = Gen_ir.generate rng in
        if Mutate.break_ rng b f then begin
          incr applied;
          let errs = Sxe_ir.Validate.errors f @ Sxe_ir.Validate.def_errors f in
          if errs <> [] then incr caught
        end
      done;
      Alcotest.(check bool)
        (Printf.sprintf "%s applies" (Mutate.string_of_breakage b))
        true (!applied > 0);
      Alcotest.(check int)
        (Printf.sprintf "%s always caught by validation" (Mutate.string_of_breakage b))
        !applied !caught)
    Mutate.all_breakages

(* ------------------------------------------------------------------ *)
(* Oracle                                                               *)
(* ------------------------------------------------------------------ *)

let test_oracle_clean_on_sound_pipeline () =
  for s = 0 to 10 do
    let case = Oracle.Minij (Gen_minij.of_seed s) in
    Alcotest.(check int)
      (Printf.sprintf "no divergence on seed %d" s)
      0
      (List.length (Oracle.check ~fuel case))
  done

let test_oracle_catches_injected_bug () =
  (* self-test: deleting the extension after a W32 add/sub/mul must be
     flagged on at least one case of a small campaign *)
  let o =
    {
      Driver.default_options with
      seed = 42;
      count = 20;
      sabotage = Some Inject.Skip_add_extend;
      shrink = false;
    }
  in
  let report = Driver.run o in
  Alcotest.(check bool) "injected bug detected" true (report.Driver.failures <> [])

let test_oracle_trap_classified () =
  (* a program whose faithful run wild-accesses memory is classified as a
     trap divergence, not a crash *)
  let case = Oracle.Minij "void main() { int x = 2147483647; x = x + 1; checksum(x); }"
  in
  Alcotest.(check int) "overflow checksum case is sound under the real pipeline" 0
    (List.length (Oracle.check ~fuel case))

(* ------------------------------------------------------------------ *)
(* Shrinker                                                             *)
(* ------------------------------------------------------------------ *)

let test_shrinker_minimizes_injected_failure () =
  let o =
    {
      Driver.default_options with
      seed = 42;
      count = 20;
      sabotage = Some Inject.Skip_add_extend;
    }
  in
  let report = Driver.run o in
  match report.Driver.failures with
  | [] -> Alcotest.fail "expected the injected bug to be caught"
  | fr :: _ -> (
      match fr.Driver.shrunk with
      | None -> Alcotest.fail "expected a shrunk witness"
      | Some p ->
          let n = Shrink.instr_total p in
          Alcotest.(check bool)
            (Printf.sprintf "shrunk to %d <= 15 instructions" n)
            true (n <= 15);
          (* the shrunk program still exhibits the divergence *)
          let sab = Inject.apply Inject.Skip_add_extend in
          Alcotest.(check bool) "shrunk witness still diverges" true
            (Oracle.check ~sabotage:sab (Oracle.Ir p) <> []))

let test_shrinker_respects_keep () =
  (* with an always-true keep, shrinking terminates and yields a valid,
     much smaller program *)
  let p = Gen_ir.of_seed 8 in
  let n0 = Shrink.instr_total p in
  let q = Shrink.minimize ~keep:(fun _ -> true) p in
  let n1 = Shrink.instr_total q in
  Alcotest.(check bool) "shrunk smaller" true (n1 < n0);
  Sxe_ir.Prog.iter_funcs Sxe_ir.Validate.check q;
  (* original untouched *)
  Alcotest.(check int) "input program not mutated" n0 (Shrink.instr_total p)

(* ------------------------------------------------------------------ *)
(* Corpus                                                               *)
(* ------------------------------------------------------------------ *)

let temp_dir () =
  let d = Filename.temp_file "sxe_corpus" "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let test_corpus_roundtrip_ir () =
  for s = 0 to 20 do
    let p = Gen_ir.of_seed s in
    let text = Corpus.prog_to_string p in
    let q = Corpus.prog_of_string text in
    Alcotest.(check string)
      (Printf.sprintf "round-trip stable (seed %d)" s)
      text (Corpus.prog_to_string q);
    let run x = Sxe_vm.Interp.run ~mode:`Canonical ~fuel ~count_cycles:false x in
    Alcotest.(check bool)
      (Printf.sprintf "round-trip behaviour (seed %d)" s)
      true
      (Sxe_vm.Interp.equivalent (run (Sxe_ir.Clone.clone_prog p)) (run q))
  done

let test_corpus_save_load () =
  let dir = temp_dir () in
  let p = Gen_ir.of_seed 4 in
  let path_ir = Corpus.save ~dir ~name:"case-ir" ~header:[ "hello" ] (Oracle.Ir p) in
  let src = Gen_minij.of_seed 5 in
  let path_mj = Corpus.save ~dir ~name:"case-mj" (Oracle.Minij src) in
  Alcotest.(check bool) "ir file exists" true (Sys.file_exists path_ir);
  Alcotest.(check bool) "minij file exists" true (Sys.file_exists path_mj);
  let entries = Corpus.load_dir dir in
  Alcotest.(check int) "two entries" 2 (List.length entries);
  List.iter
    (fun (name, case) ->
      match case with
      | Oracle.Minij s -> Alcotest.(check string) name src s
      | Oracle.Ir q ->
          Alcotest.(check string) name (Corpus.prog_to_string p) (Corpus.prog_to_string q))
    entries;
  (* replay: both entries are sound, so no failures *)
  Alcotest.(check int) "replay clean" 0 (List.length (Driver.replay dir));
  List.iter (fun (n, _) -> Sys.remove (Filename.concat dir n)) entries;
  Unix.rmdir dir

let test_corpus_parse_error () =
  Alcotest.check_raises "bad magic rejected"
    (Corpus.Parse_error "missing 'sxir v1' header")
    (fun () -> ignore (Corpus.prog_of_string "bogus\n"))

(* ------------------------------------------------------------------ *)
(* Campaign driver                                                      *)
(* ------------------------------------------------------------------ *)

let test_campaign_deterministic () =
  let o = { Driver.default_options with seed = 7; count = 12 } in
  let a = Driver.run o and b = Driver.run o in
  Alcotest.(check int) "same case mix (minij)" a.Driver.minij_cases b.Driver.minij_cases;
  Alcotest.(check int) "same case mix (ir)" a.Driver.ir_cases b.Driver.ir_cases;
  Alcotest.(check int) "no failures on sound pipeline" 0 (List.length a.Driver.failures)

let test_campaign_saves_corpus () =
  let dir = temp_dir () in
  let o =
    {
      Driver.default_options with
      seed = 42;
      count = 20;
      sabotage = Some Inject.Skip_add_extend;
      corpus_dir = Some dir;
    }
  in
  let report = Driver.run o in
  Alcotest.(check bool) "failure found" true (report.Driver.failures <> []);
  let saved = List.filter_map (fun f -> f.Driver.saved) report.Driver.failures in
  Alcotest.(check bool) "witness persisted" true (saved <> []);
  (* the persisted witness replays as failing under the same sabotage *)
  let still = Driver.replay ~sabotage:(Inject.apply Inject.Skip_add_extend) dir in
  Alcotest.(check bool) "persisted witness still diverges" true (still <> []);
  List.iter Sys.remove saved;
  Unix.rmdir dir

let suite =
  [
    Alcotest.test_case "rng: determinism" `Quick test_rng_deterministic;
    Alcotest.test_case "rng: bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng: frequency weights" `Quick test_rng_frequency;
    Alcotest.test_case "rng: shuffle is a permutation" `Quick test_rng_shuffle;
    Alcotest.test_case "rng: case seeds distinct" `Quick test_case_seed_distinct;
    Alcotest.test_case "gen_minij: deterministic" `Quick test_gen_minij_deterministic;
    Alcotest.test_case "gen_minij: compiles and runs" `Quick test_gen_minij_compiles;
    Alcotest.test_case "gen_minij: minimal featureset" `Quick test_gen_minij_features;
    Alcotest.test_case "gen_ir: valid and terminating" `Quick test_gen_ir_valid;
    Alcotest.test_case "mutate: validity preserved" `Quick test_mutations_preserve_validity;
    Alcotest.test_case "mutate: permutation is behaviour-preserving" `Quick
      test_permute_blocks_preserves_behaviour;
    Alcotest.test_case "mutate: breakages detected by validation" `Quick
      test_breakages_detected;
    Alcotest.test_case "oracle: clean on sound pipeline" `Quick
      test_oracle_clean_on_sound_pipeline;
    Alcotest.test_case "oracle: catches injected bug" `Quick
      test_oracle_catches_injected_bug;
    Alcotest.test_case "oracle: overflow stays sound" `Quick test_oracle_trap_classified;
    Alcotest.test_case "shrink: injected failure minimized" `Slow
      test_shrinker_minimizes_injected_failure;
    Alcotest.test_case "shrink: respects keep and terminates" `Quick
      test_shrinker_respects_keep;
    Alcotest.test_case "corpus: IR round-trip" `Quick test_corpus_roundtrip_ir;
    Alcotest.test_case "corpus: save/load/replay" `Quick test_corpus_save_load;
    Alcotest.test_case "corpus: parse errors reported" `Quick test_corpus_parse_error;
    Alcotest.test_case "driver: campaign deterministic" `Quick test_campaign_deterministic;
    Alcotest.test_case "driver: failures persisted to corpus" `Quick
      test_campaign_saves_corpus;
  ]
