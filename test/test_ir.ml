(** Tests of the IR substrate: evaluation semantics, classification
    predicates, validation, builder and printer. *)

open Sxe_ir
open Sxe_ir.Types

let i64 = Alcotest.int64

(* -- Eval ------------------------------------------------------------ *)

let test_eval_extensions () =
  Alcotest.check i64 "sext32 of 0x80000000" 0xFFFFFFFF80000000L (Eval.sext32 0x80000000L);
  Alcotest.check i64 "sext32 idempotent" (-5L) (Eval.sext32 (-5L));
  Alcotest.check i64 "zext32" 0xFFFFFFFFL (Eval.zext32 (-1L));
  Alcotest.check i64 "sext8" (-1L) (Eval.sext8 0xFFL);
  Alcotest.check i64 "sext8 positive" 127L (Eval.sext8 0x7FL);
  Alcotest.check i64 "sext16" (-2L) (Eval.sext16 0xFFFEL);
  Alcotest.check i64 "zext16" 0xFFFEL (Eval.zext16 0xFFFFFFFFFFFFFFFEL);
  Alcotest.(check bool) "is_sign_extended_32 yes" true (Eval.is_sign_extended_32 (-7L));
  Alcotest.(check bool)
    "is_sign_extended_32 no" false
    (Eval.is_sign_extended_32 0x80000000L);
  Alcotest.(check bool) "is_upper_zero yes" true (Eval.is_upper_zero_32 0xFFFFFFFFL);
  Alcotest.(check bool) "is_upper_zero no" false (Eval.is_upper_zero_32 (-1L))

let test_eval_binops () =
  (* 32-bit ops are full 64-bit operations: upper bits are real *)
  Alcotest.check i64 "add past 2^31" 0x80000000L (Eval.binop Add W32 0x7FFFFFFFL 1L);
  Alcotest.check i64 "sub below -2^31" 0xFFFFFFFF7FFFFFFFL
    (Eval.binop Sub W32 (Eval.sext32 0x80000000L) 1L);
  (* shift amounts are masked *)
  Alcotest.check i64 "shl masks amount" 2L (Eval.binop Shl W32 1L 33L);
  Alcotest.check i64 "shl64 masks amount" 4L (Eval.binop Shl W64 1L 66L);
  (* ashr observes full register *)
  Alcotest.check i64 "ashr of garbage upper" 0x40000000L (Eval.binop AShr W32 0x80000000L 1L);
  (* lshr32 zero-extends its source internally *)
  Alcotest.check i64 "lshr32" 0x7FFFFFFFL (Eval.binop LShr W32 (-1L) 1L);
  (* Java division corner: min_int / -1 wraps, no trap *)
  Alcotest.check i64 "min/-1 wraps" 0x80000000L
    (Eval.binop Div W32 (Eval.sext32 0x80000000L) (-1L));
  Alcotest.check i64 "rem min/-1" 0L (Eval.binop Rem W32 (Eval.sext32 0x80000000L) (-1L));
  Alcotest.check_raises "div by zero" Eval.Division_by_zero (fun () ->
      ignore (Eval.binop Div W32 5L 0L));
  (* the w32 zero check inspects low bits only *)
  Alcotest.check_raises "div by garbage-upper zero" Eval.Division_by_zero (fun () ->
      ignore (Eval.binop Div W32 5L 0x1_0000_0000L))

let test_eval_cmp () =
  (* cmp4 ignores upper 32 bits *)
  Alcotest.(check bool) "cmp4 ignores upper" true (Eval.cmp Eq W32 0xFFFFFFFF00000005L 5L);
  Alcotest.(check bool) "cmp4 signed" true (Eval.cmp Lt W32 0xFFFFFFFFL 0L);
  (* 0xFFFFFFFF as a 32-bit value is -1 < 0 *)
  Alcotest.(check bool) "cmp8 uses full" false (Eval.cmp Eq W64 0xFFFFFFFF00000005L 5L);
  Alcotest.(check bool) "NaN compares" false (Eval.fcmp Le nan 0.0);
  Alcotest.(check bool) "NaN ne" true (Eval.fcmp Ne nan nan)

let test_eval_conversions () =
  Alcotest.check i64 "d2i saturates high" 0x7FFFFFFFL (Eval.d2i 1e18);
  Alcotest.check i64 "d2i saturates low" (Eval.sext32 0x80000000L) (Eval.d2i (-1e18));
  Alcotest.check i64 "d2i NaN" 0L (Eval.d2i nan);
  Alcotest.check i64 "d2l saturates" Int64.max_int (Eval.d2l 1e30);
  Alcotest.(check (float 0.0)) "i2d full register" 4294967295.0 (Eval.i2d 0xFFFFFFFFL)
(* i2d of an unextended -1 register produces 2^32-1: the bug the
   optimization must never introduce *)

(* -- classification --------------------------------------------------- *)

let test_classification () =
  let reg_ty _ = I32 in
  let i2d = Instr.I2D { dst = 1; src = 0 } in
  Alcotest.(check (list int)) "i2d requires src" [ 0 ] (Instr.required_ext_uses ~reg_ty i2d);
  let add = Instr.Binop { dst = 2; op = Add; l = 0; r = 1; w = W32 } in
  Alcotest.(check (list int)) "add requires nothing" [] (Instr.required_ext_uses ~reg_ty add);
  Alcotest.(check (list int)) "add propagates demand" [ 0; 1 ] (Instr.demand_propagates_to add);
  let div = Instr.Binop { dst = 2; op = Div; l = 0; r = 1; w = W32 } in
  Alcotest.(check (list int)) "div requires both" [ 0; 1 ] (Instr.required_ext_uses ~reg_ty div);
  let ashr = Instr.Binop { dst = 2; op = AShr; l = 0; r = 1; w = W32 } in
  Alcotest.(check (list int)) "ashr requires value only" [ 0 ]
    (Instr.required_ext_uses ~reg_ty ashr);
  Alcotest.(check bool) "div result extended" true (Instr.def_always_extended div);
  Alcotest.(check bool) "add result not extended" false (Instr.def_always_extended add);
  Alcotest.(check bool)
    "sext extended" true
    (Instr.def_always_extended (Instr.Sext { r = 0; from = W32 }));
  Alcotest.(check bool)
    "zext8 extended" true
    (Instr.def_always_extended (Instr.Zext { r = 0; from = W8 }));
  Alcotest.(check bool)
    "zext32 not extended" false
    (Instr.def_always_extended (Instr.Zext { r = 0; from = W32 }));
  Alcotest.(check bool)
    "ia64 load upper zero" true
    (Instr.def_upper_zero
       (Instr.ArrLoad { dst = 1; arr = 0; idx = 2; elem = AI32; lext = LZero }));
  Alcotest.(check bool)
    "lwa load extended" true
    (Instr.def_always_extended
       (Instr.ArrLoad { dst = 1; arr = 0; idx = 2; elem = AI32; lext = LSign }))

(* -- validation -------------------------------------------------------- *)

let test_validate_ok () =
  let b, _ = Builder.create ~name:"f" ~params:[ I32 ] ~ret:I32 () in
  let x = Builder.iconst b 41 in
  let one = Builder.iconst b 1 in
  let s = Builder.add b x one in
  Builder.retv b I32 s;
  Validate.check (Builder.func b)

let test_validate_type_error () =
  let b, _ = Builder.create ~name:"f" ~params:[] () in
  let x = Builder.iconst b 1 in
  let y = Builder.fconst b 2.0 in
  let f = Builder.func b in
  (* force an ill-typed instruction *)
  Cfg.append_instr (Cfg.block f 0)
    (Cfg.mk_instr f (Instr.Binop { dst = x; op = Add; l = x; r = y; w = W32 }));
  Builder.ret b;
  Alcotest.(check bool) "detects type error" true (Validate.errors f <> [])

let test_validate_label_error () =
  let b, _ = Builder.create ~name:"f" ~params:[] () in
  Builder.jmp b 99;
  Alcotest.(check bool) "detects bad label" true (Validate.errors (Builder.func b) <> [])

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_printer_roundtrip_smoke () =
  let b, _ = Builder.create ~name:"f" ~params:[ I32; Ref ] ~ret:I32 () in
  let x = Builder.iconst b 7 in
  ignore (Builder.sext b x);
  Builder.retv b I32 x;
  let s = Printer.func_to_string (Builder.func b) in
  Alcotest.(check bool) "prints extend" true (contains_substring s "extend32")

(* property: W32 wrap-tolerant operators agree with Int32 reference
   semantics on the low 32 bits, whatever garbage sits in the upper 32 *)
let prop_eval_w32_model =
  let open QCheck in
  let garbage = Gen.oneofl [ 0L; 0x1234_5678_0000_0000L; -0x7654_0000_0000_0000L ] in
  let gen =
    Gen.tup4 (Gen.oneofl [ Add; Sub; Mul; And; Or; Xor; Shl; LShr ])
      (Gen.map Int64.of_int Gen.int) (Gen.map Int64.of_int Gen.int) garbage
  in
  Test.make ~name:"W32 ops match Int32 model on low bits" ~count:500 (make gen)
    (fun (op, a, b, g) ->
      let a32 = Int32.of_int (Int64.to_int a) and b32 = Int32.of_int (Int64.to_int b) in
      let full_a = Int64.logor (Int64.of_int32 a32 |> Eval.zext32) g in
      let full_b = Int64.of_int32 b32 in
      let got = Eval.low32 (Eval.binop op W32 full_a full_b) in
      let expect32 =
        match op with
        | Add -> Int32.add a32 b32
        | Sub -> Int32.sub a32 b32
        | Mul -> Int32.mul a32 b32
        | And -> Int32.logand a32 b32
        | Or -> Int32.logor a32 b32
        | Xor -> Int32.logxor a32 b32
        | Shl -> Int32.shift_left a32 (Int32.to_int b32 land 31)
        | LShr -> Int32.shift_right_logical a32 (Int32.to_int b32 land 31)
        | _ -> assert false
      in
      Int64.equal got (Eval.zext32 (Int64.of_int32 expect32)))

(* property: the (kind × width) extension algebra. For every width,
   extension after truncation is determined by the low bits alone
   (zext∘trunc and sext∘trunc are idempotent projections), zext always
   lands in [0, 2^w), and on values whose w-bit image is non-negative
   the two kinds coincide — the conversion fact the optimizer uses. *)
let prop_ext_roundtrips =
  let open QCheck in
  let boundaries =
    [
      0L; 1L; -1L; 127L; 128L; -128L; -129L; 255L; 256L;
      32767L; 32768L; -32768L; -32769L; 65535L; 65536L;
      0x7FFF_FFFFL; 0x8000_0000L; -0x8000_0000L; -0x8000_0001L;
      0xFFFF_FFFFL; 0x1_0000_0000L; Int64.min_int; Int64.max_int;
    ]
  in
  let gen =
    Gen.pair
      (Gen.oneofl [ W8; W16; W32 ])
      (Gen.oneof [ Gen.oneofl boundaries; Gen.map Int64.of_int Gen.int ])
  in
  Test.make ~name:"extension round-trips and sext/zext agreement" ~count:1000
    (make gen) (fun (w, v) ->
      let sx = Eval.sext_from w and zx = Eval.zext_from w in
      let bits = match w with W8 -> 8 | W16 -> 16 | W32 -> 32 | W64 -> 64 in
      let lim = Int64.shift_left 1L bits in
      (* both extensions look only at the low w bits *)
      Int64.equal (sx v) (sx (zx v))
      && Int64.equal (zx v) (zx (sx v))
      (* idempotence *)
      && Int64.equal (sx v) (sx (sx v))
      && Int64.equal (zx v) (zx (zx v))
      (* zext lands in the unsigned window *)
      && zx v >= 0L
      && zx v < lim
      (* sext lands in the signed window *)
      && sx v >= Int64.neg (Int64.shift_right_logical lim 1)
      && sx v < Int64.shift_right_logical lim 1
      (* sext of a non-negative image IS zext (and vice versa) *)
      && (if sx v >= 0L then Int64.equal (sx v) (zx v)
          else not (Int64.equal (sx v) (zx v)))
      (* the two images agree modulo 2^w *)
      && Int64.equal (Int64.logand (sx v) (Int64.pred lim)) (Int64.logand (zx v) (Int64.pred lim)))

(* property: W32 div/rem match Java semantics when fed extended operands *)
let prop_eval_divrem_model =
  let open QCheck in
  Test.make ~name:"W32 div/rem match Int32 model on extended inputs" ~count:500
    (pair int int) (fun (a, b) ->
      let a32 = Int32.of_int a and b32 = Int32.of_int b in
      let fa = Int64.of_int32 a32 and fb = Int64.of_int32 b32 in
      if Int32.equal b32 0l then
        (try
           ignore (Eval.binop Div W32 fa fb);
           false
         with Eval.Division_by_zero -> true)
      else begin
        let q = Eval.low32 (Eval.binop Div W32 fa fb) in
        let r = Eval.low32 (Eval.binop Rem W32 fa fb) in
        Int64.equal q (Eval.zext32 (Int64.of_int32 (Int32.div a32 b32)))
        && Int64.equal r (Eval.zext32 (Int64.of_int32 (Int32.rem a32 b32)))
      end)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_eval_w32_model;
    QCheck_alcotest.to_alcotest prop_ext_roundtrips;
    QCheck_alcotest.to_alcotest prop_eval_divrem_model;
    Alcotest.test_case "eval extensions" `Quick test_eval_extensions;
    Alcotest.test_case "eval binops" `Quick test_eval_binops;
    Alcotest.test_case "eval compare" `Quick test_eval_cmp;
    Alcotest.test_case "eval conversions" `Quick test_eval_conversions;
    Alcotest.test_case "use/def classification" `Quick test_classification;
    Alcotest.test_case "validate accepts good IR" `Quick test_validate_ok;
    Alcotest.test_case "validate rejects type error" `Quick test_validate_type_error;
    Alcotest.test_case "validate rejects bad label" `Quick test_validate_label_error;
    Alcotest.test_case "printer smoke" `Quick test_printer_roundtrip_smoke;
  ]
