let () =
  Alcotest.run "signext"
    [
      ("util", Test_util.suite);
      ("ir", Test_ir.suite);
      ("cfg", Test_cfg.suite);
      ("dataflow", Test_dataflow.suite);
      ("range", Test_range.suite);
      ("opt", Test_opt.suite);
      ("convert", Test_convert.suite);
      ("demand", Test_demand.suite);
      ("analyze", Test_analyze.suite);
      ("figures", Test_figures.suite);
      ("lang", Test_lang.suite);
      ("vm", Test_vm.suite);
      ("precode", Test_precode.suite);
      ("fuse", Test_fuse.suite);
      ("codegen", Test_codegen.suite);
      ("inline", Test_inline.suite);
      ("harness", Test_harness.suite);
      ("validate", Test_validate.suite);
      ("check", Test_check.suite);
      ("audit", Test_audit.suite);
      ("fuzz", Test_fuzz.suite);
      ("par", Test_par.suite);
      ("differential", Test_differential.suite);
      ("workloads", Test_workloads.suite);
      ("serve", Test_serve.suite);
    ]
