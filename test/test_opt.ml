(** Tests for Step 2's general optimizations: constant folding, copy
    propagation, local CSE, DCE, edge splitting and lazy code motion. *)

open Sxe_ir
open Sxe_ir.Types
module B = Builder

let count_op f pred = Cfg.fold_instrs (fun n _ i -> if pred i.Instr.op then n + 1 else n) 0 f

let is_const = function Instr.Const _ -> true | _ -> false
let is_sext = Instr.is_sext
let is_binop = function Instr.Binop _ -> true | _ -> false

let test_constfold_arith () =
  let b, _ = B.create ~name:"f" ~params:[] ~ret:I32 () in
  let x = B.iconst b 6 in
  let y = B.iconst b 7 in
  let m = B.mul b x y in
  B.retv b I32 m;
  let f = B.func b in
  ignore (Sxe_opt.Constfold.run f);
  Alcotest.(check int) "no binop left" 0 (count_op f is_binop);
  (* and the result is the right constant *)
  let p = Helpers.prog_of_func f in
  let out = Sxe_vm.Interp.run p in
  Alcotest.(check (option int64)) "folded value" (Some 42L) out.Sxe_vm.Interp.ret

let test_constfold_folds_extension () =
  (* "the sign extension will be changed to a copy instruction by constant
     folding" (Section 2) *)
  let b, _ = B.create ~name:"f" ~params:[] ~ret:I32 () in
  let x = B.iconst b (-5) in
  ignore (B.sext b x);
  B.retv b I32 x;
  let f = B.func b in
  ignore (Sxe_opt.Constfold.run f);
  Alcotest.(check int) "extension folded away" 0 (count_op f is_sext)

let test_constfold_wrap () =
  (* folding is exact for 32-bit wraparound *)
  let b, _ = B.create ~name:"f" ~params:[] ~ret:I32 () in
  let x = B.const b ~ty:I32 0x7FFFFFFFL in
  let one = B.iconst b 1 in
  let s = B.add b x one in
  ignore (B.sext b s);
  B.retv b I32 s;
  let f = B.func b in
  ignore (Sxe_opt.Constfold.run f);
  let p = Helpers.prog_of_func f in
  let out = Sxe_vm.Interp.run p in
  Alcotest.(check (option int64)) "wrapped" (Some (Int64.of_int32 Int32.min_int))
    out.Sxe_vm.Interp.ret

let test_constfold_division_guard () =
  (* a constant division by zero must NOT be folded: the trap is the
     program's observable behaviour *)
  let b, _ = B.create ~name:"f" ~params:[] ~ret:I32 () in
  let x = B.iconst b 5 in
  let z = B.iconst b 0 in
  let d = B.div b x z in
  B.retv b I32 d;
  let f = B.func b in
  ignore (Sxe_opt.Constfold.run f);
  Alcotest.(check int) "division kept" 1 (count_op f is_binop);
  let out = Sxe_vm.Interp.run (Helpers.prog_of_func f) in
  Alcotest.(check (option string)) "still traps" (Some "division-by-zero")
    out.Sxe_vm.Interp.trap

let test_constfold_branch () =
  let b, _ = B.create ~name:"f" ~params:[] ~ret:I32 () in
  let x = B.iconst b 1 in
  let y = B.iconst b 2 in
  let t = B.new_block b and e = B.new_block b in
  B.br b Lt x y ~ifso:t ~ifnot:e;
  B.switch b t;
  B.retv b I32 x;
  B.switch b e;
  B.retv b I32 y;
  let f = B.func b in
  ignore (Sxe_opt.Constfold.run f);
  (match (Cfg.term (Cfg.block f 0)) with
  | Instr.Jmp l -> Alcotest.(check int) "branch folded to taken side" t l
  | _ -> Alcotest.fail "branch not folded");
  ignore (Sxe_opt.Simplify.run f);
  Alcotest.(check bool) "unreachable emptied" true ((Cfg.body (Cfg.block f e)) = [])

let test_copyprop () =
  let b, params = B.create ~name:"f" ~params:[ I32 ] ~ret:I32 () in
  let x = List.hd params in
  let c = B.mov b ~ty:I32 x in
  let c2 = B.mov b ~ty:I32 c in
  let s = B.add b c2 c2 in
  B.retv b I32 s;
  let f = B.func b in
  ignore (Sxe_opt.Copyprop.run f);
  (* the add now reads the original register *)
  let found = ref false in
  Cfg.iter_instrs
    (fun _ i ->
      match i.Instr.op with
      | Instr.Binop { op = Add; l; r; _ } when l = x && r = x -> found := true
      | _ -> ())
    f;
  Alcotest.(check bool) "copies propagated transitively" true !found

let test_dce () =
  let b, params = B.create ~name:"f" ~params:[ I32 ] ~ret:I32 () in
  let x = List.hd params in
  let dead1 = B.iconst b 5 in
  let _dead2 = B.add b dead1 dead1 in
  B.retv b I32 x;
  let f = B.func b in
  ignore (Sxe_opt.Dce.run f);
  Alcotest.(check int) "dead chain removed" 0 (Cfg.instr_count f)

let test_dce_keeps_effects () =
  let b, params = B.create ~name:"f" ~params:[ Ref; I32 ] ~ret:I32 () in
  let a = List.hd params and i = List.nth params 1 in
  let _unused_load = B.arrload b AI32 a i in
  B.retv b I32 i;
  let f = B.func b in
  ignore (Sxe_opt.Dce.run f);
  Alcotest.(check int) "throwing load kept" 1 (Cfg.instr_count f)

let test_localcse () =
  let b, params = B.create ~name:"f" ~params:[ I32; I32 ] ~ret:I32 () in
  let x = List.hd params and y = List.nth params 1 in
  let a1 = B.add b x y in
  let a2 = B.add b y x in
  (* commutative: same expression *)
  let s = B.add b a1 a2 in
  B.retv b I32 s;
  let f = B.func b in
  ignore (Sxe_opt.Localcse.run f);
  ignore (Sxe_opt.Copyprop.run f);
  ignore (Sxe_opt.Dce.run f);
  Alcotest.(check int) "one add eliminated" 2 (count_op f is_binop)

let test_localcse_double_extension () =
  let b, params = B.create ~name:"f" ~params:[ I32 ] ~ret:I32 () in
  let x = List.hd params in
  ignore (B.sext b x);
  ignore (B.sext b x);
  B.retv b I32 x;
  let f = B.func b in
  ignore (Sxe_opt.Localcse.run f);
  Alcotest.(check int) "second extension dropped" 1 (count_op f is_sext)

let test_localcse_respects_redef () =
  (* x is overwritten from elsewhere between the two adds: the second
     add(x, y) computes a different value and must stay *)
  let b, params = B.create ~name:"f" ~params:[ I32; I32; I32 ] ~ret:I32 () in
  let x = List.hd params and y = List.nth params 1 and z = List.nth params 2 in
  let a1 = B.add b x y in
  B.mov_to b ~dst:x ~src:z I32;
  let a2 = B.add b x y in
  let s = B.add b a1 a2 in
  B.retv b I32 s;
  let f = B.func b in
  ignore (Sxe_opt.Localcse.run f);
  Alcotest.(check int) "no folding across redefinition" 3 (count_op f is_binop);
  (* whereas i = i + 1 immediately after an identical add IS redundant *)
  let b2, params2 = B.create ~name:"g" ~params:[ I32; I32 ] ~ret:I32 () in
  let p = List.hd params2 and q = List.nth params2 1 in
  let c1 = B.add b2 p q in
  B.binop_to b2 Add ~dst:p p q;
  B.retv b2 I32 c1;
  let g = B.func b2 in
  ignore (Sxe_opt.Localcse.run g);
  ignore p;
  Alcotest.(check int) "pre-redefinition occurrence folded" 1 (count_op g is_binop)

let test_deadstore () =
  (* an overwritten-before-read definition: DU chains alone cannot remove
     it (the register has later uses of the other definition) *)
  let b, params = B.create ~name:"f" ~params:[ I32; I32 ] ~ret:I32 () in
  let x = List.hd params and y = List.nth params 1 in
  let t = B.fresh b I32 in
  B.binop_to b Add ~dst:t x y;
  (* dead: t overwritten below before any read *)
  B.binop_to b Mul ~dst:t x y;
  let s = B.add b t x in
  B.retv b I32 s;
  let f = B.func b in
  ignore (Sxe_opt.Deadstore.run f);
  Alcotest.(check int) "dead add removed" 2 (count_op f is_binop);
  (* semantics: result is x*y + x *)
  let caller, _ = B.create ~name:"main" ~params:[] () in
  let a3 = B.iconst caller 3 and a4 = B.iconst caller 4 in
  (match B.call caller ~ret:I32 "f" [ (a3, I32); (a4, I32) ] with
  | Some r -> ignore (B.call caller "checksum" [ (r, I32) ])
  | None -> assert false);
  B.ret caller;
  let p = Helpers.prog_of_func f in
  Sxe_ir.Prog.add_func p (B.func caller);
  p.Sxe_ir.Prog.main <- "main";
  let out = Sxe_vm.Interp.run p in
  Alcotest.(check int64) "value preserved" 15L out.Sxe_vm.Interp.checksum

let test_deadstore_keeps_live () =
  let b, params = B.create ~name:"f" ~params:[ I32 ] ~ret:I32 () in
  let x = List.hd params in
  let t = B.add b x x in
  B.retv b I32 t;
  let f = B.func b in
  ignore (Sxe_opt.Deadstore.run f);
  Alcotest.(check int) "live def kept" 1 (count_op f is_binop)

let test_split_edges () =
  let b, params = B.create ~name:"f" ~params:[ I32 ] ~ret:I32 () in
  let x = List.hd params in
  (* a critical edge: B0 branches to B1 and B2; B1 jumps to B2 (B2 has two
     preds, B0 has two succs: B0->B2 is critical) *)
  let b1 = B.new_block b and b2 = B.new_block b in
  B.br b Lt x x ~ifso:b1 ~ifnot:b2;
  B.switch b b1;
  B.jmp b b2;
  B.switch b b2;
  B.retv b I32 x;
  let f = B.func b in
  Sxe_opt.Split_edges.run f;
  (* entry must now be empty with a single successor *)
  let entry = Cfg.block f (Cfg.entry f) in
  Alcotest.(check bool) "entry empty" true ((Cfg.body entry) = []);
  Alcotest.(check int) "entry single succ" 1 (List.length (Cfg.succs entry));
  (* no critical edges remain *)
  let preds = Cfg.preds f in
  Cfg.iter_blocks
    (fun blk ->
      let ss = Cfg.succs blk in
      if List.length ss > 1 then
        List.iter
          (fun s ->
            Alcotest.(check bool)
              (Printf.sprintf "edge B%d->B%d uncritical" blk.Cfg.bid s)
              true
              (List.length preds.(s) <= 1))
          ss)
    f

let test_lcm_hoists_invariant () =
  (* t = x*y recomputed inside a loop with x,y invariant: LCM moves it out *)
  let src =
    {|
void main() {
  int x = 12345; int y = 678; int acc = 0;
  int i = 0;
  while (i < 50) { acc = acc + (x * y); i = i + 1; }
  checksum(acc);
}
|}
  in
  let reference = Helpers.reference_outcome src in
  let prog = Sxe_lang.Frontend.compile src in
  Sxe_opt.Pipeline.run prog;
  Validate.check_prog prog;
  let out = Sxe_vm.Interp.run ~mode:`Canonical prog in
  Alcotest.(check bool) "semantics preserved" true (Sxe_vm.Interp.equivalent reference out)

let test_pipeline_preserves_figure3 () =
  (* the full Step-2 pipeline on a loop-heavy function is semantics
     preserving under the faithful machine after Step 1 *)
  let src =
    {|
global int mem;
void main() {
  int n = 64;
  int[] a = new int[n];
  int k = 0;
  while (k < n) { a[k] = k * 1103515245 + 12345; k = k + 1; }
  mem = n;
  int t = 0;
  int i = mem;
  do {
    i = i - 1;
    int j = a[i];
    j = j & 0x0fffffff;
    t += j;
  } while (i > 0);
  print_int(t);
  checksum(t);
}
|}
  in
  let results = Helpers.check_all_variants ~name:"figure3-ish" src in
  (* baseline executes strictly more extensions than the full algorithm *)
  let base = Helpers.dyn_of results "baseline" in
  let full = Helpers.dyn_of results "new algorithm (all)" in
  Alcotest.(check bool) "full <= baseline" true (Int64.compare full base <= 0)

let suite =
  [
    Alcotest.test_case "constfold arithmetic" `Quick test_constfold_arith;
    Alcotest.test_case "constfold folds extension" `Quick test_constfold_folds_extension;
    Alcotest.test_case "constfold 32-bit wrap" `Quick test_constfold_wrap;
    Alcotest.test_case "constfold keeps div-by-zero" `Quick test_constfold_division_guard;
    Alcotest.test_case "constfold folds branch" `Quick test_constfold_branch;
    Alcotest.test_case "copy propagation" `Quick test_copyprop;
    Alcotest.test_case "dce removes dead chain" `Quick test_dce;
    Alcotest.test_case "dce keeps effects" `Quick test_dce_keeps_effects;
    Alcotest.test_case "local cse (commutative)" `Quick test_localcse;
    Alcotest.test_case "local cse drops re-extension" `Quick test_localcse_double_extension;
    Alcotest.test_case "local cse respects redefinition" `Quick test_localcse_respects_redef;
    Alcotest.test_case "dead store elimination" `Quick test_deadstore;
    Alcotest.test_case "dead store keeps live defs" `Quick test_deadstore_keeps_live;
    Alcotest.test_case "edge splitting" `Quick test_split_edges;
    Alcotest.test_case "lcm preserves semantics" `Quick test_lcm_hoists_invariant;
    Alcotest.test_case "pipeline on figure-3 loop" `Quick test_pipeline_preserves_figure3;
  ]
