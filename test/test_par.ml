(** Tests for the [lib/par] domain pool and the determinism contract of
    the drivers built on it: whatever [jobs], fuzz campaigns and the
    certify matrix must produce byte-identical output to a sequential
    run. *)

open Sxe_par

(* ------------------------------------------------------------------ *)
(* Pool unit tests                                                      *)
(* ------------------------------------------------------------------ *)

let test_map_ordered () =
  Pool.with_pool ~jobs:4 (fun p ->
      let xs = List.init 100 Fun.id in
      Alcotest.(check (list int))
        "results in input order"
        (List.map (fun x -> x * x) xs)
        (Pool.map p (fun x -> x * x) xs))

let test_map_empty_and_reuse () =
  Pool.with_pool ~jobs:3 (fun p ->
      Alcotest.(check (list int)) "empty input" [] (Pool.map p Fun.id []);
      (* the same pool serves several batches *)
      for k = 1 to 5 do
        let xs = List.init (10 * k) (fun i -> i * k) in
        Alcotest.(check (list int))
          (Printf.sprintf "batch %d" k)
          xs (Pool.map p Fun.id xs)
      done)

exception Boom of int

let test_exception_propagation () =
  Pool.with_pool ~jobs:4 (fun p ->
      (match Pool.map p (fun x -> if x = 3 then raise (Boom x) else x) (List.init 8 Fun.id) with
      | _ -> Alcotest.fail "expected Boom to propagate"
      | exception Boom 3 -> ());
      (* two failing tasks: the lowest index wins, deterministically, as
         in a sequential run *)
      (match
         Pool.map p (fun x -> if x = 2 || x = 5 then raise (Boom x) else x) (List.init 8 Fun.id)
       with
      | _ -> Alcotest.fail "expected Boom to propagate"
      | exception Boom i -> Alcotest.(check int) "lowest failing index" 2 i);
      (* the pool survives a failed batch *)
      Alcotest.(check (list int))
        "pool usable after failure" [ 0; 1; 2 ]
        (Pool.map p Fun.id [ 0; 1; 2 ]))

let test_consume_in_order () =
  Pool.with_pool ~jobs:4 (fun p ->
      let seen = ref [] in
      Pool.consume_map p Fun.id
        ~consume:(fun i v -> seen := (i, v) :: !seen)
        (List.init 50 Fun.id);
      Alcotest.(check (list (pair int int)))
        "consumed in ascending index order"
        (List.init 50 (fun i -> (i, i)))
        (List.rev !seen))

let test_jobs_one_is_sequential () =
  Pool.with_pool ~jobs:1 (fun p ->
      Alcotest.(check int) "jobs" 1 (Pool.jobs p);
      (* strict compute/consume interleaving: the exact sequential path *)
      let order = ref [] in
      Pool.consume_map p
        (fun x ->
          order := ("f", x) :: !order;
          x)
        ~consume:(fun _ v -> order := ("c", v) :: !order)
        [ 0; 1; 2 ];
      Alcotest.(check (list (pair string int)))
        "compute i, consume i, advance"
        [ ("f", 0); ("c", 0); ("f", 1); ("c", 1); ("f", 2); ("c", 2) ]
        (List.rev !order))

let test_default_jobs_env () =
  Unix.putenv Pool.env_var "3";
  Alcotest.(check int) "SXE_JOBS=3" 3 (Pool.default_jobs ());
  Unix.putenv Pool.env_var "";
  Alcotest.(check int) "empty means 1" 1 (Pool.default_jobs ());
  Unix.putenv Pool.env_var "zero";
  (match Pool.default_jobs () with
  | _ -> Alcotest.fail "expected Invalid_argument on SXE_JOBS=zero"
  | exception Invalid_argument _ -> ());
  Unix.putenv Pool.env_var ""

(* ------------------------------------------------------------------ *)
(* Fuzz campaigns: parallel ≡ sequential, byte for byte                 *)
(* ------------------------------------------------------------------ *)

open Sxe_fuzz

(* Everything observable about a report, as one string: counts, case
   indices and seeds, classified failures, shrunk witnesses, save paths. *)
let report_fingerprint (r : Driver.report) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "cases=%d minij=%d ir=%d mutated=%d\n" r.Driver.cases
       r.Driver.minij_cases r.Driver.ir_cases r.Driver.mutated_cases);
  List.iter
    (fun (fr : Driver.failure_report) ->
      Buffer.add_string b
        (Printf.sprintf "case %d seed %d kind %s saved %s\n" fr.Driver.index
           fr.Driver.case_seed
           (Driver.string_of_kind fr.Driver.kind)
           (Option.value fr.Driver.saved ~default:"-"));
      List.iter
        (fun f -> Buffer.add_string b (Format.asprintf "  %a\n" Oracle.pp_failure f))
        fr.Driver.failures;
      match fr.Driver.shrunk with
      | Some p -> Buffer.add_string b (Sxe_ir.Printer.prog_to_string p)
      | None -> ())
    r.Driver.failures;
  Buffer.contents b

let run_campaign ~jobs o =
  let log = Buffer.create 256 in
  let r =
    Driver.run
      { o with Driver.jobs; log = (fun s -> Buffer.add_string log s; Buffer.add_char log '\n') }
  in
  (report_fingerprint r, Buffer.contents log)

let test_fuzz_par_clean_campaign () =
  let o = { Driver.default_options with seed = 7; count = 12 } in
  let fp1, log1 = run_campaign ~jobs:1 o in
  let fp4, log4 = run_campaign ~jobs:4 o in
  Alcotest.(check string) "report identical" fp1 fp4;
  Alcotest.(check string) "log identical" log1 log4

let test_fuzz_par_failing_campaign () =
  (* with an injected bug, failures (and their in-worker shrinks) must
     come back in the same order with the same witnesses at any width *)
  let o =
    {
      Driver.default_options with
      seed = 42;
      count = 20;
      sabotage = Some Inject.Skip_add_extend;
    }
  in
  let fp1, log1 = run_campaign ~jobs:1 o in
  let fp4, log4 = run_campaign ~jobs:4 o in
  Alcotest.(check bool) "campaign does fail" true (log1 <> "");
  Alcotest.(check string) "report identical" fp1 fp4;
  Alcotest.(check string) "log identical" log1 log4

(* ------------------------------------------------------------------ *)
(* Certify matrix: parallel ≡ sequential verdict table                  *)
(* ------------------------------------------------------------------ *)

(* The verdict table sxopt certify prints, one line per (workload,
   variant) cell, computed at the given width. Mirrors the CLI's cell
   structure: freeze the bases, then compile + certify clones per cell. *)
let certify_table ~jobs () =
  let inputs =
    List.filteri (fun i _ -> i < 3) (Sxe_workloads.Registry.all ())
    |> List.map (fun (w : Sxe_workloads.Registry.t) ->
           (w.name, Sxe_lang.Frontend.compile w.source))
  in
  List.iter (fun (_, p) -> Sxe_ir.Clone.freeze_prog p) inputs;
  let configs = Oracle.all_variants () in
  let cells =
    List.concat_map
      (fun (name, base) -> List.map (fun c -> (name, base, c)) configs)
      inputs
  in
  Pool.with_pool ~jobs (fun p ->
      Pool.map p
        (fun (name, base, (config : Sxe_core.Config.t)) ->
          let q = Sxe_ir.Clone.clone_prog base in
          let _ = Sxe_core.Pass.compile config q in
          let errs = Sxe_check.Check.certify_prog q in
          Printf.sprintf "%s/%s: %s" name config.Sxe_core.Config.name
            (if errs = [] then "ok"
             else
               String.concat "; " (List.map Sxe_check.Certify.error_to_string errs)))
        cells)

let test_certify_matrix_par_deterministic () =
  let t1 = certify_table ~jobs:1 () in
  let t4 = certify_table ~jobs:4 () in
  Alcotest.(check (list string)) "verdict table identical" t1 t4;
  Alcotest.(check int) "3 workloads x 12 variants" 36 (List.length t1)

let suite =
  [
    Alcotest.test_case "pool: map is ordered" `Quick test_map_ordered;
    Alcotest.test_case "pool: empty input, batch reuse" `Quick test_map_empty_and_reuse;
    Alcotest.test_case "pool: exception propagation" `Quick test_exception_propagation;
    Alcotest.test_case "pool: consume_map delivers in order" `Quick test_consume_in_order;
    Alcotest.test_case "pool: jobs=1 is the sequential path" `Quick
      test_jobs_one_is_sequential;
    Alcotest.test_case "pool: SXE_JOBS parsing" `Quick test_default_jobs_env;
    Alcotest.test_case "fuzz: clean campaign, jobs 1 = jobs 4" `Quick
      test_fuzz_par_clean_campaign;
    Alcotest.test_case "fuzz: failing campaign, jobs 1 = jobs 4" `Slow
      test_fuzz_par_failing_campaign;
    Alcotest.test_case "certify: matrix verdicts, jobs 1 = jobs 4" `Slow
      test_certify_matrix_par_deterministic;
  ]
