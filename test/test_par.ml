(** Tests for the [lib/par] domain pool and the determinism contract of
    the drivers built on it: whatever [jobs], fuzz campaigns and the
    certify matrix must produce byte-identical output to a sequential
    run. *)

open Sxe_par

(* Race coverage beats wall clock here: force the requested domain
   counts even on machines with fewer cores, where Pool.create would
   otherwise (correctly) clamp to the sequential path. The scaling smoke
   test below is the one place that wants the clamp's honest behavior,
   and it skips itself on such machines anyway. *)
let () = Unix.putenv Pool.oversubscribe_env_var "1"

(* ------------------------------------------------------------------ *)
(* Pool unit tests                                                      *)
(* ------------------------------------------------------------------ *)

let test_map_ordered () =
  Pool.with_pool ~jobs:4 (fun p ->
      let xs = List.init 100 Fun.id in
      Alcotest.(check (list int))
        "results in input order"
        (List.map (fun x -> x * x) xs)
        (Pool.map p (fun x -> x * x) xs))

let test_map_empty_and_reuse () =
  Pool.with_pool ~jobs:3 (fun p ->
      Alcotest.(check (list int)) "empty input" [] (Pool.map p Fun.id []);
      (* the same pool serves several batches *)
      for k = 1 to 5 do
        let xs = List.init (10 * k) (fun i -> i * k) in
        Alcotest.(check (list int))
          (Printf.sprintf "batch %d" k)
          xs (Pool.map p Fun.id xs)
      done)

exception Boom of int

let test_exception_propagation () =
  Pool.with_pool ~jobs:4 (fun p ->
      (match Pool.map p (fun x -> if x = 3 then raise (Boom x) else x) (List.init 8 Fun.id) with
      | _ -> Alcotest.fail "expected Boom to propagate"
      | exception Boom 3 -> ());
      (* two failing tasks: the lowest index wins, deterministically, as
         in a sequential run *)
      (match
         Pool.map p (fun x -> if x = 2 || x = 5 then raise (Boom x) else x) (List.init 8 Fun.id)
       with
      | _ -> Alcotest.fail "expected Boom to propagate"
      | exception Boom i -> Alcotest.(check int) "lowest failing index" 2 i);
      (* the pool survives a failed batch *)
      Alcotest.(check (list int))
        "pool usable after failure" [ 0; 1; 2 ]
        (Pool.map p Fun.id [ 0; 1; 2 ]))

let test_consume_in_order () =
  Pool.with_pool ~jobs:4 (fun p ->
      let seen = ref [] in
      Pool.consume_map p Fun.id
        ~consume:(fun i v -> seen := (i, v) :: !seen)
        (List.init 50 Fun.id);
      Alcotest.(check (list (pair int int)))
        "consumed in ascending index order"
        (List.init 50 (fun i -> (i, i)))
        (List.rev !seen))

let test_jobs_one_is_sequential () =
  Pool.with_pool ~jobs:1 (fun p ->
      Alcotest.(check int) "jobs" 1 (Pool.jobs p);
      (* strict compute/consume interleaving: the exact sequential path *)
      let order = ref [] in
      Pool.consume_map p
        (fun x ->
          order := ("f", x) :: !order;
          x)
        ~consume:(fun _ v -> order := ("c", v) :: !order)
        [ 0; 1; 2 ];
      Alcotest.(check (list (pair string int)))
        "compute i, consume i, advance"
        [ ("f", 0); ("c", 0); ("f", 1); ("c", 1); ("f", 2); ("c", 2) ]
        (List.rev !order))

(* ------------------------------------------------------------------ *)
(* Chunked scheduling                                                   *)
(* ------------------------------------------------------------------ *)

let test_auto_chunk () =
  Alcotest.(check int) "tiny batch" 1 (Pool.auto_chunk ~domains:4 ~n:10);
  Alcotest.(check int) "certify-matrix-sized" 7 (Pool.auto_chunk ~domains:4 ~n:252);
  Alcotest.(check int) "capped" 64 (Pool.auto_chunk ~domains:2 ~n:100_000);
  Alcotest.(check int) "never zero" 1 (Pool.auto_chunk ~domains:8 ~n:1)

let test_chunked_order () =
  (* forced chunk sizes, including chunk > n and chunk = 1, must not
     change delivery order or completeness *)
  List.iter
    (fun chunk ->
      Pool.with_pool ~clamp:false ~chunk ~jobs:3 (fun p ->
          let xs = List.init 23 Fun.id in
          Alcotest.(check (list int))
            (Printf.sprintf "map ordered at chunk %d" chunk)
            (List.map (fun x -> x * 7) xs)
            (Pool.map p (fun x -> x * 7) xs);
          let seen = ref [] in
          Pool.consume_map p Fun.id ~consume:(fun i v -> seen := (i, v) :: !seen) xs;
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "consume ordered at chunk %d" chunk)
            (List.map (fun i -> (i, i)) xs)
            (List.rev !seen)))
    [ 1; 4; 5; 23; 100 ]

let test_stats_counters () =
  Pool.with_pool ~clamp:false ~chunk:5 ~jobs:3 (fun p ->
      ignore (Pool.map p Fun.id (List.init 23 Fun.id));
      let s = Pool.stats p in
      Alcotest.(check int) "domains" 3 s.Pool.domains;
      Alcotest.(check int) "chunk recorded" 5 s.Pool.chunk;
      Alcotest.(check int) "every item executed exactly once" 23
        (Array.fold_left ( + ) 0 s.Pool.tasks);
      Alcotest.(check int) "ceil(23/5) chunks" 5 (Array.fold_left ( + ) 0 s.Pool.chunks);
      Alcotest.(check bool) "buffer high-water within bounds" true
        (s.Pool.max_buffered >= 1 && s.Pool.max_buffered <= 23);
      Alcotest.(check bool) "busy time accumulated" true
        (Array.fold_left ( +. ) 0.0 s.Pool.busy_s >= 0.0);
      (* counters are cumulative across batches *)
      ignore (Pool.map p Fun.id (List.init 7 Fun.id));
      let s2 = Pool.stats p in
      Alcotest.(check int) "cumulative items" 30
        (Array.fold_left ( + ) 0 s2.Pool.tasks);
      Alcotest.(check int) "cumulative chunks" 7
        (Array.fold_left ( + ) 0 s2.Pool.chunks))

let test_chunk_env () =
  Unix.putenv Pool.chunk_env_var "9";
  Pool.with_pool ~clamp:false ~jobs:2 (fun p ->
      ignore (Pool.map p Fun.id (List.init 20 Fun.id));
      Alcotest.(check int) "SXE_CHUNK=9 honored" 9 (Pool.stats p).Pool.chunk);
  Unix.putenv Pool.chunk_env_var "junk";
  (match Pool.create ~clamp:false ~jobs:2 () with
  | p ->
      Pool.shutdown p;
      Alcotest.fail "expected Invalid_argument on SXE_CHUNK=junk"
  | exception Invalid_argument _ -> ());
  Unix.putenv Pool.chunk_env_var "";
  (* explicit ?chunk wins over the environment *)
  Unix.putenv Pool.chunk_env_var "3";
  Pool.with_pool ~clamp:false ~chunk:11 ~jobs:2 (fun p ->
      ignore (Pool.map p Fun.id (List.init 30 Fun.id));
      Alcotest.(check int) "?chunk beats SXE_CHUNK" 11 (Pool.stats p).Pool.chunk);
  Unix.putenv Pool.chunk_env_var ""

let test_bounded_resequencer () =
  (* fast producers + slow consumer: workers must throttle instead of
     buffering the whole batch *)
  Pool.with_pool ~clamp:false ~chunk:4 ~jobs:4 (fun p ->
      let n = 300 in
      let seen = ref 0 in
      Pool.consume_map p Fun.id
        ~consume:(fun _ _ ->
          incr seen;
          if !seen mod 25 = 0 then Unix.sleepf 0.005)
        (List.init n Fun.id);
      Alcotest.(check int) "all consumed" n !seen;
      let s = Pool.stats p in
      (* window = max 64 (2*chunk*domains) = 64; in-flight chunks can
         overshoot by at most one chunk per worker *)
      Alcotest.(check bool)
        (Printf.sprintf "buffering bounded (max_buffered=%d)" s.Pool.max_buffered)
        true
        (s.Pool.max_buffered <= 64 + (4 * 4)))

(* ------------------------------------------------------------------ *)
(* Edge cases                                                           *)
(* ------------------------------------------------------------------ *)

let test_more_jobs_than_tasks () =
  Pool.with_pool ~clamp:false ~jobs:8 (fun p ->
      Alcotest.(check (list int))
        "3 tasks on 8 domains" [ 0; 2; 4 ]
        (Pool.map p (fun x -> 2 * x) [ 0; 1; 2 ]);
      Alcotest.(check int) "domains spawned" 8 (Pool.domains p))

let test_zero_tasks () =
  Pool.with_pool ~clamp:false ~jobs:4 (fun p ->
      Alcotest.(check (list int)) "map []" [] (Pool.map p Fun.id []);
      let hits = ref 0 in
      Pool.consume_map p Fun.id ~consume:(fun _ _ -> incr hits) [];
      Alcotest.(check int) "consume_map [] calls nothing" 0 !hits)

let test_raise_mid_chunk () =
  Pool.with_pool ~clamp:false ~chunk:4 ~jobs:2 (fun p ->
      let attempted = Atomic.make 0 in
      let f x =
        Atomic.incr attempted;
        if x = 5 || x = 9 then raise (Boom x) else x
      in
      (match Pool.map p f (List.init 12 Fun.id) with
      | _ -> Alcotest.fail "expected Boom to propagate"
      | exception Boom i ->
          Alcotest.(check int) "lowest failing index wins, mid-chunk" 5 i);
      (* the failing item neither aborts its chunk nor the batch: every
         item still ran exactly once before the error surfaced *)
      Alcotest.(check int) "all items attempted" 12 (Atomic.get attempted);
      Alcotest.(check (list int))
        "pool usable after mid-chunk failure" [ 1; 2; 3 ]
        (Pool.map p Fun.id [ 1; 2; 3 ]))

let test_use_after_shutdown () =
  let p = Pool.create ~clamp:false ~jobs:3 () in
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *);
  (match Pool.map p Fun.id [ 1; 2; 3 ] with
  | _ -> Alcotest.fail "expected Invalid_argument after shutdown"
  | exception Invalid_argument _ -> ());
  (* same contract on a pool that never had workers *)
  let q = Pool.create ~jobs:1 () in
  Pool.shutdown q;
  match Pool.consume_map q Fun.id ~consume:(fun _ _ -> ()) [ 1 ] with
  | _ -> Alcotest.fail "expected Invalid_argument after shutdown (jobs=1)"
  | exception Invalid_argument _ -> ()

let test_start_stop_stress () =
  (* create/shutdown churn with work in flight: a worker that wakes on
     the final broadcast with an empty queue must still exit (the live
     re-check in the take path), so none of these joins may hang *)
  for round = 1 to 30 do
    Pool.with_pool ~clamp:false ~jobs:4 (fun p ->
        ignore (Pool.map p (fun x -> x * round) (List.init 8 Fun.id)));
    (* and shutdown with zero batches ever submitted *)
    let p = Pool.create ~clamp:false ~jobs:4 () in
    Pool.shutdown p
  done;
  Alcotest.(check pass) "no hang across 30 start/stop rounds" () ()

(* ------------------------------------------------------------------ *)
(* Scaling smoke: parallel must actually win on parallel hardware       *)
(* ------------------------------------------------------------------ *)

(* CPU-bound, allocation-free work so the measurement sees scheduling
   and GC behavior, not the memory bus. *)
let spin iters =
  let x = ref 0x9E3779B9 in
  for _ = 1 to iters do
    x := !x lxor (!x lsl 13);
    x := !x lxor (!x lsr 7);
    x := !x lxor (!x lsl 17)
  done;
  !x

let test_scaling_smoke () =
  if Domain.recommended_domain_count () < 4 then
    Alcotest.skip () (* no parallel hardware: nothing to measure *)
  else begin
    (* the clamp must not bite here (cores >= 4), and the pool defaults
       (chunking, GC tuning) are exactly what is under test *)
    Unix.putenv Pool.oversubscribe_env_var "";
    Fun.protect
      ~finally:(fun () -> Unix.putenv Pool.oversubscribe_env_var "1")
      (fun () ->
        let tasks = List.init 64 (fun i -> 400_000 + (i mod 7)) in
        let wall jobs =
          Pool.with_pool ~jobs (fun p ->
              let t0 = Unix.gettimeofday () in
              ignore (Pool.map p spin tasks);
              Unix.gettimeofday () -. t0)
        in
        ignore (wall 4) (* warm up: domain spawn, page faults *);
        let w1 = wall 1 and w4 = wall 4 in
        let speedup = w1 /. w4 in
        Alcotest.(check bool)
          (Printf.sprintf "jobs=4 beats jobs=1 by >= 1.5x (got %.2fx: %.3fs vs %.3fs)"
             speedup w1 w4)
          true (speedup >= 1.5))
  end

let test_default_jobs_env () =
  Unix.putenv Pool.env_var "3";
  Alcotest.(check int) "SXE_JOBS=3" 3 (Pool.default_jobs ());
  Unix.putenv Pool.env_var "";
  Alcotest.(check int) "empty means 1" 1 (Pool.default_jobs ());
  Unix.putenv Pool.env_var "zero";
  (match Pool.default_jobs () with
  | _ -> Alcotest.fail "expected Invalid_argument on SXE_JOBS=zero"
  | exception Invalid_argument _ -> ());
  Unix.putenv Pool.env_var ""

(* ------------------------------------------------------------------ *)
(* Fuzz campaigns: parallel ≡ sequential, byte for byte                 *)
(* ------------------------------------------------------------------ *)

open Sxe_fuzz

(* Everything observable about a report, as one string: counts, case
   indices and seeds, classified failures, shrunk witnesses, save paths. *)
let report_fingerprint (r : Driver.report) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "cases=%d minij=%d ir=%d mutated=%d\n" r.Driver.cases
       r.Driver.minij_cases r.Driver.ir_cases r.Driver.mutated_cases);
  List.iter
    (fun (fr : Driver.failure_report) ->
      Buffer.add_string b
        (Printf.sprintf "case %d seed %d kind %s saved %s\n" fr.Driver.index
           fr.Driver.case_seed
           (Driver.string_of_kind fr.Driver.kind)
           (Option.value fr.Driver.saved ~default:"-"));
      List.iter
        (fun f -> Buffer.add_string b (Format.asprintf "  %a\n" Oracle.pp_failure f))
        fr.Driver.failures;
      match fr.Driver.shrunk with
      | Some p -> Buffer.add_string b (Sxe_ir.Printer.prog_to_string p)
      | None -> ())
    r.Driver.failures;
  Buffer.contents b

let run_campaign ~jobs o =
  let log = Buffer.create 256 in
  let r =
    Driver.run
      { o with Driver.jobs; log = (fun s -> Buffer.add_string log s; Buffer.add_char log '\n') }
  in
  (report_fingerprint r, Buffer.contents log)

let test_fuzz_par_clean_campaign () =
  let o = { Driver.default_options with seed = 7; count = 12 } in
  let fp1, log1 = run_campaign ~jobs:1 o in
  let fp4, log4 = run_campaign ~jobs:4 o in
  Alcotest.(check string) "report identical" fp1 fp4;
  Alcotest.(check string) "log identical" log1 log4

let test_fuzz_par_failing_campaign () =
  (* with an injected bug, failures (and their in-worker shrinks) must
     come back in the same order with the same witnesses at any width *)
  let o =
    {
      Driver.default_options with
      seed = 42;
      count = 20;
      sabotage = Some Inject.Skip_add_extend;
    }
  in
  let fp1, log1 = run_campaign ~jobs:1 o in
  let fp4, log4 = run_campaign ~jobs:4 o in
  Alcotest.(check bool) "campaign does fail" true (log1 <> "");
  Alcotest.(check string) "report identical" fp1 fp4;
  Alcotest.(check string) "log identical" log1 log4

(* ------------------------------------------------------------------ *)
(* Certify matrix: parallel ≡ sequential verdict table                  *)
(* ------------------------------------------------------------------ *)

(* The verdict table sxopt certify prints, one line per (workload,
   variant) cell, computed at the given width. Mirrors the CLI's cell
   structure: freeze the bases, then compile + certify clones per cell. *)
let certify_table ~jobs () =
  let inputs =
    List.filteri (fun i _ -> i < 3) (Sxe_workloads.Registry.all ())
    |> List.map (fun (w : Sxe_workloads.Registry.t) ->
           (w.name, Sxe_lang.Frontend.compile w.source))
  in
  List.iter (fun (_, p) -> Sxe_ir.Clone.freeze_prog p) inputs;
  let configs = Oracle.all_variants () in
  let cells =
    List.concat_map
      (fun (name, base) -> List.map (fun c -> (name, base, c)) configs)
      inputs
  in
  Pool.with_pool ~jobs (fun p ->
      Pool.map p
        (fun (name, base, (config : Sxe_core.Config.t)) ->
          let q = Sxe_ir.Clone.clone_prog base in
          let _ = Sxe_core.Pass.compile config q in
          let errs = Sxe_check.Check.certify_prog q in
          Printf.sprintf "%s/%s: %s" name config.Sxe_core.Config.name
            (if errs = [] then "ok"
             else
               String.concat "; " (List.map Sxe_check.Certify.error_to_string errs)))
        cells)

let test_certify_matrix_par_deterministic () =
  let t1 = certify_table ~jobs:1 () in
  let t4 = certify_table ~jobs:4 () in
  Alcotest.(check (list string)) "verdict table identical" t1 t4;
  Alcotest.(check int) "3 workloads x 12 variants" 36 (List.length t1)

let suite =
  [
    Alcotest.test_case "pool: map is ordered" `Quick test_map_ordered;
    Alcotest.test_case "pool: empty input, batch reuse" `Quick test_map_empty_and_reuse;
    Alcotest.test_case "pool: exception propagation" `Quick test_exception_propagation;
    Alcotest.test_case "pool: consume_map delivers in order" `Quick test_consume_in_order;
    Alcotest.test_case "pool: jobs=1 is the sequential path" `Quick
      test_jobs_one_is_sequential;
    Alcotest.test_case "pool: SXE_JOBS parsing" `Quick test_default_jobs_env;
    Alcotest.test_case "pool: auto chunk sizing" `Quick test_auto_chunk;
    Alcotest.test_case "pool: chunked scheduling keeps order" `Quick test_chunked_order;
    Alcotest.test_case "pool: stats counters" `Quick test_stats_counters;
    Alcotest.test_case "pool: SXE_CHUNK parsing and precedence" `Quick test_chunk_env;
    Alcotest.test_case "pool: resequencer buffering is bounded" `Quick
      test_bounded_resequencer;
    Alcotest.test_case "pool: more jobs than tasks" `Quick test_more_jobs_than_tasks;
    Alcotest.test_case "pool: zero tasks" `Quick test_zero_tasks;
    Alcotest.test_case "pool: exception mid-chunk" `Quick test_raise_mid_chunk;
    Alcotest.test_case "pool: use after shutdown raises" `Quick test_use_after_shutdown;
    Alcotest.test_case "pool: start/stop stress" `Slow test_start_stop_stress;
    Alcotest.test_case "pool: scaling smoke (jobs 4 vs 1)" `Slow test_scaling_smoke;
    Alcotest.test_case "fuzz: clean campaign, jobs 1 = jobs 4" `Quick
      test_fuzz_par_clean_campaign;
    Alcotest.test_case "fuzz: failing campaign, jobs 1 = jobs 4" `Slow
      test_fuzz_par_failing_campaign;
    Alcotest.test_case "certify: matrix verdicts, jobs 1 = jobs 4" `Slow
      test_certify_matrix_par_deterministic;
  ]
