(** Pre-decoded engine tests: bit-identical outcomes — dynamic counters
    included — against the structural interpreter, across the committed
    fuzz corpus, the workload registry, every trap path, and the
    generation-counter cache invalidation. *)

open Sxe_ir
open Sxe_ir.Types
module B = Builder

let outcome : Sxe_vm.Interp.outcome Alcotest.testable =
  let open Sxe_vm.Interp in
  let pp ppf (o : outcome) =
    Format.fprintf ppf
      "{trap=%s; ret=%s; checksum=%Ld; output=%S; executed=%Ld; sext32=%Ld; \
       sext_sub=%Ld; zext32=%Ld; zext_sub=%Ld; cycles=%Ld}"
      (Option.value ~default:"none" o.trap)
      (match o.ret with None -> "none" | Some v -> Int64.to_string v)
      o.checksum o.output o.executed o.sext32 o.sext_sub o.zext32 o.zext_sub
      o.cycles
  in
  Alcotest.testable pp ( = )

(** Both engines on the same program, every field compared. *)
let check_parity ?fuel msg ~mode (p : Prog.t) =
  let st = Sxe_vm.Interp.run ~mode ?fuel ~engine:`Structural p in
  let pre = Sxe_vm.Interp.run ~mode ?fuel ~engine:`Precode p in
  Alcotest.check outcome msg st pre;
  pre

(* ------------------------------------------------------------------ *)
(* Committed corpus and registry workloads                             *)
(* ------------------------------------------------------------------ *)

let corpus_dir = "../corpus"

let test_corpus_parity () =
  let entries = Sxe_fuzz.Corpus.load_dir corpus_dir in
  Alcotest.(check bool) "corpus present" true (entries <> []);
  List.iter
    (fun (name, case) ->
      let base = Sxe_fuzz.Oracle.prog_of_case case in
      ignore
        (check_parity ~fuel:400_000L
           (Printf.sprintf "%s (canonical, unoptimized)" name)
           ~mode:`Canonical (Clone.clone_prog base));
      let opt = Clone.clone_prog base in
      ignore (Sxe_core.Pass.compile (Sxe_core.Config.new_all ()) opt);
      ignore
        (check_parity ~fuel:400_000L
           (Printf.sprintf "%s (faithful, full algorithm)" name)
           ~mode:`Faithful opt))
    entries

let test_workload_parity () =
  List.iter
    (fun (w : Sxe_workloads.Registry.t) ->
      let base = Sxe_lang.Frontend.compile w.source in
      ignore
        (check_parity
           (Printf.sprintf "%s (canonical, unoptimized)" w.name)
           ~mode:`Canonical (Clone.clone_prog base));
      let opt = Clone.clone_prog base in
      ignore (Sxe_core.Pass.compile (Sxe_core.Config.new_all ()) opt);
      ignore
        (check_parity
           (Printf.sprintf "%s (faithful, full algorithm)" w.name)
           ~mode:`Faithful opt))
    (Sxe_workloads.Registry.all ~scale:1 ())

let test_unsigned_parity () =
  (* The zero-extension residue class: all three engines (the fused one
     via [check3]-style runs below) agree on every counter — zext32
     included — and the full algorithm strictly reduces the dynamic
     zero-extension count the guarded baseline pays. *)
  List.iter
    (fun (w : Sxe_workloads.Registry.t) ->
      let base = Sxe_lang.Frontend.compile w.source in
      ignore
        (check_parity
           (Printf.sprintf "%s (canonical, unoptimized)" w.name)
           ~mode:`Canonical (Clone.clone_prog base));
      let run config =
        let opt = Clone.clone_prog base in
        ignore (Sxe_core.Pass.compile config opt);
        let out =
          check_parity
            (Printf.sprintf "%s (faithful, %s)" w.name
               config.Sxe_core.Config.name)
            ~mode:`Faithful opt
        in
        let fused =
          Sxe_vm.Interp.run ~mode:`Faithful ~engine:`Precode
            ~fuse:Sxe_vm.Fuse.All opt
        in
        Alcotest.check outcome
          (Printf.sprintf "%s (%s): fused parity" w.name
             config.Sxe_core.Config.name)
          out fused;
        out
      in
      let b = run (Sxe_core.Config.baseline ()) in
      let full = run (Sxe_core.Config.new_all ()) in
      Alcotest.(check bool)
        (w.name ^ ": baseline pays dynamic zero extensions")
        true
        (Int64.compare b.Sxe_vm.Interp.zext32 0L > 0);
      Alcotest.(check bool)
        (w.name ^ ": full algorithm eliminates dynamic zero extensions")
        true
        (Int64.compare full.Sxe_vm.Interp.zext32 b.Sxe_vm.Interp.zext32 < 0))
    (Sxe_workloads.Registry.unsigned ~scale:1 ())

(* ------------------------------------------------------------------ *)
(* Trap paths: identical trap name AND identical counters at the trap  *)
(* ------------------------------------------------------------------ *)

let check_trap msg ?fuel ~expect p =
  let out = check_parity msg ?fuel ~mode:`Faithful p in
  Alcotest.(check (option string)) (msg ^ ": trap name") (Some expect)
    out.Sxe_vm.Interp.trap

let test_fuel_exhaustion () =
  (* entry jumps to itself: both engines must cut off at the same tick *)
  let b, _ = B.create ~name:"main" ~params:[] () in
  B.jmp b (B.current b);
  check_trap "infinite loop" ~fuel:1_000L ~expect:"fuel-exhausted"
    (Helpers.prog_of_func (B.func b))

let test_wild_access () =
  (* bounds check passes on the low 32 bits while the full register is
     out of range — the faithful machine's signature trap *)
  let b, _ = B.create ~name:"main" ~params:[] () in
  let len = B.iconst b 10 in
  let a = B.newarr b AI32 len in
  let c1 = B.const b ~ty:I32 0x7FFFFFFFL in
  let c2 = B.const b ~ty:I32 0x7FFFFFFFL in
  let t = B.add b c1 c2 in
  let four = B.iconst b 4 in
  let idx = B.add b t four in
  let v = B.arrload b AI32 a idx in
  ignore (B.call b "checksum" [ (v, I32) ]);
  B.ret b;
  check_trap "wild access" ~expect:"wild-access" (Helpers.prog_of_func (B.func b))

let test_stack_overflow () =
  let b, _ = B.create ~name:"main" ~params:[] () in
  (match B.call b "main" [] with Some _ -> assert false | None -> ());
  B.ret b;
  check_trap "unbounded recursion" ~expect:"stack-overflow"
    (Helpers.prog_of_func (B.func b))

let test_division_by_zero () =
  let b, _ = B.create ~name:"main" ~params:[] () in
  let one = B.iconst b 1 in
  let zero = B.iconst b 0 in
  let q = B.div b one zero in
  ignore (B.call b "checksum" [ (q, I32) ]);
  B.ret b;
  check_trap "division by zero" ~expect:"division-by-zero"
    (Helpers.prog_of_func (B.func b))

(* ------------------------------------------------------------------ *)
(* Cache invalidation                                                  *)
(* ------------------------------------------------------------------ *)

let test_cache_invalidation () =
  (* Run once (populating the per-function decode cache), mutate the
     function through the Cfg API, run again: the second run must see
     the mutation, and still match the structural engine. *)
  let b, _ = B.create ~name:"main" ~params:[] () in
  let c = B.iconst b 5 in
  ignore (B.call b "checksum" [ (c, I32) ]);
  B.ret b;
  let f = B.func b in
  let p = Helpers.prog_of_func f in
  let first = Sxe_vm.Interp.run ~engine:`Precode p in
  Cfg.iter_instrs
    (fun blk i ->
      match i.Instr.op with
      | Instr.Const { dst; ty; v = 5L } -> Cfg.set_op blk i (Instr.Const { dst; ty; v = 7L })
      | _ -> ())
    f;
  let second = check_parity "after mutation" ~mode:`Faithful p in
  Alcotest.(check bool) "mutation visible to the cached engine" false
    (Int64.equal first.Sxe_vm.Interp.checksum second.Sxe_vm.Interp.checksum)

let suite =
  [
    Alcotest.test_case "parity: committed corpus" `Quick test_corpus_parity;
    Alcotest.test_case "parity: registry workloads" `Quick test_workload_parity;
    Alcotest.test_case "parity: unsigned workloads (3 engines + zext counts)"
      `Quick test_unsigned_parity;
    Alcotest.test_case "trap: fuel exhaustion" `Quick test_fuel_exhaustion;
    Alcotest.test_case "trap: wild access" `Quick test_wild_access;
    Alcotest.test_case "trap: stack overflow" `Quick test_stack_overflow;
    Alcotest.test_case "trap: division by zero" `Quick test_division_by_zero;
    Alcotest.test_case "decode cache invalidated by mutation" `Quick
      test_cache_invalidation;
  ]
