(** Value-range analysis tests: transfer precision, branch refinement,
    loop widening/narrowing, and soundness against the interpreter. *)

open Sxe_ir
open Sxe_ir.Types
open Sxe_analysis
module B = Builder

let range_of_last_def f reg =
  (* range of [reg] after the last instruction of the entry block *)
  let blk = Cfg.block f 0 in
  let last = List.nth (Cfg.body blk) (List.length (Cfg.body blk) - 1) in
  let t = Range.compute f in
  Range.after t ~bid:0 ~iid:last.Instr.iid reg

let test_const_and_arith () =
  let b, _ = B.create ~name:"f" ~params:[] ~ret:I32 () in
  let x = B.iconst b 10 in
  let y = B.iconst b 3 in
  let s = B.add b x y in
  let d = B.div b s y in
  B.retv b I32 d;
  let f = B.func b in
  Alcotest.(check (pair int64 int64)) "10+3" (13L, 13L) (range_of_last_def f s);
  Alcotest.(check (pair int64 int64)) "13/3" (4L, 4L) (range_of_last_def f d)

let test_and_mask () =
  let b, params = B.create ~name:"f" ~params:[ I32 ] ~ret:I32 () in
  let x = List.hd params in
  let m = B.iconst b 0xFF in
  let r = B.and_ b x m in
  B.retv b I32 r;
  let f = B.func b in
  Alcotest.(check (pair int64 int64)) "x & 0xff" (0L, 255L) (range_of_last_def f r)

let test_rem_range () =
  let b, params = B.create ~name:"f" ~params:[ I32 ] ~ret:I32 () in
  let x = List.hd params in
  let m = B.iconst b 10 in
  let r = B.rem_ b x m in
  B.retv b I32 r;
  Alcotest.(check (pair int64 int64)) "x % 10" (-9L, 9L) (range_of_last_def (B.func b) r)

let test_branch_refinement () =
  (* if (x < 10 && x >= 0) then ... range of x in the then-branch *)
  let b, params = B.create ~name:"f" ~params:[ I32 ] ~ret:I32 () in
  let x = List.hd params in
  let ten = B.iconst b 10 in
  let zero = B.iconst b 0 in
  let b1 = B.new_block b and b2 = B.new_block b and b3 = B.new_block b in
  B.br b Lt x ten ~ifso:b1 ~ifnot:b3;
  B.switch b b1;
  B.br b Ge x zero ~ifso:b2 ~ifnot:b3;
  B.switch b b2;
  let probe = B.add b x zero in
  B.retv b I32 probe;
  B.switch b b3;
  B.retv b I32 x;
  let f = B.func b in
  let t = Range.compute f in
  (* at the entry of b2, x is in [0, 9] *)
  let lo, hi =
    let blk = Cfg.block f b2 in
    let first = List.hd (Cfg.body blk) in
    Range.before t ~bid:b2 ~iid:first.Instr.iid x
  in
  Alcotest.(check (pair int64 int64)) "refined x" (0L, 9L) (lo, hi)

let test_loop_counter () =
  (* for (i = 0; i < 100; i++): in the body, i in [0, 99] *)
  let b, _ = B.create ~name:"f" ~params:[] ~ret:I32 () in
  let i = B.iconst b 0 in
  let hundred = B.iconst b 100 in
  let one = B.iconst b 1 in
  let h = B.new_block b and body = B.new_block b and ex = B.new_block b in
  B.jmp b h;
  B.switch b h;
  B.br b Lt i hundred ~ifso:body ~ifnot:ex;
  B.switch b body;
  let probe = B.add b i one in
  B.binop_to b Add ~dst:i i one;
  B.jmp b h;
  B.switch b ex;
  B.retv b I32 i;
  let f = B.func b in
  let t = Range.compute f in
  let blk = Cfg.block f body in
  let first = List.hd (Cfg.body blk) in
  let lo, hi = Range.before t ~bid:body ~iid:first.Instr.iid i in
  ignore probe;
  Alcotest.(check (pair int64 int64)) "loop body counter" (0L, 99L) (lo, hi);
  (* after the loop, i >= 100 *)
  let rlo, _rhi =
    let eblk = Cfg.block f ex in
    ignore eblk;
    (* query before the terminator: use the entry state via a probe on a
       register untouched in ex — the exit block has no body, so query the
       branch refinement through [before] of the terminator is not
       supported; instead check the body upper bound held. *)
    (100L, 100L)
  in
  ignore rlo

let test_loop_variable_bound () =
  (* for (i = 0; i < n; i++) with n itself only branch-bounded: widening
     first pushes i to the type maximum, then the narrowing passes must
     recover the [i < n] body bound from the back edge *)
  let b, params = B.create ~name:"f" ~params:[ I32 ] ~ret:I32 () in
  let n = List.hd params in
  let thousand = B.iconst b 1000 in
  let zero = B.iconst b 0 in
  let i = B.mov b ~ty:I32 zero in
  let one = B.iconst b 1 in
  let h = B.new_block b and body = B.new_block b and ex = B.new_block b in
  B.br b Lt n thousand ~ifso:h ~ifnot:ex;
  B.switch b h;
  B.br b Lt i n ~ifso:body ~ifnot:ex;
  B.switch b body;
  let probe = B.add b i zero in
  B.binop_to b Add ~dst:i i one;
  B.jmp b h;
  B.switch b ex;
  B.retv b I32 i;
  let f = B.func b in
  let t = Range.compute f in
  let first = List.hd (Cfg.body (Cfg.block f body)) in
  ignore probe;
  let lo, hi = Range.before t ~bid:body ~iid:first.Instr.iid i in
  Alcotest.(check int64) "body lower bound survives widening" 0L lo;
  (* n < 1000 on the loop path, so i < n keeps i <= 998 in the body *)
  Alcotest.(check int64) "body upper bound recovered from i < n" 998L hi

let test_array_refinement () =
  (* after a[i], i is within [0, 2^31-2] *)
  let b, params = B.create ~name:"f" ~params:[ Ref; I32 ] ~ret:I32 () in
  let a = List.hd params and i = List.nth params 1 in
  let v = B.arrload b AI32 a i in
  let probe = B.add b i v in
  B.retv b I32 probe;
  let f = B.func b in
  let t = Range.compute f in
  let blk = Cfg.block f 0 in
  let add = List.nth (Cfg.body blk) 1 in
  let lo, hi = Range.before t ~bid:0 ~iid:add.Instr.iid i in
  Alcotest.(check int64) "lower bound" 0L lo;
  Alcotest.(check int64) "upper bound" (Int64.sub Range.i32_max 1L) hi

let test_w8_boundary_narrowing () =
  (* A truncating extension keeps an in-window range exact and collapses
     anything that pokes past a window boundary, at both edges. *)
  let probe lo hi mk_ext expect =
    let b, params = B.create ~name:"f" ~params:[ I32 ] ~ret:I32 () in
    let x = List.hd params in
    let lo_c = B.iconst b lo and hi_c = B.iconst b hi in
    let b1 = B.new_block b and b2 = B.new_block b and b3 = B.new_block b in
    B.br b Ge x lo_c ~ifso:b1 ~ifnot:b3;
    B.switch b b1;
    B.br b Le x hi_c ~ifso:b2 ~ifnot:b3;
    B.switch b b2;
    (* x in [lo, hi] here; apply the extension under test *)
    let ext = mk_ext b x in
    B.retv b I32 x;
    B.switch b b3;
    B.retv b I32 x;
    let f = B.func b in
    let t = Range.compute f in
    Alcotest.(check (pair int64 int64))
      (Printf.sprintf "[%d,%d]" lo hi)
      expect
      (Range.after t ~bid:b2 ~iid:ext.Instr.iid x)
  in
  let sext8 b x = B.sext b ~from:W8 x in
  let sext16 b x = B.sext b ~from:W16 x in
  (* exactly the window: exact range survives *)
  probe (-128) 127 sext8 (-128L, 127L);
  probe 0 127 sext8 (0L, 127L);
  (* one past either boundary: collapse to the full window *)
  probe 0 128 sext8 (-128L, 127L);
  probe (-129) 0 sext8 (-128L, 127L);
  (* W16 boundaries behave identically at their window *)
  probe (-32768) 32767 sext16 (-32768L, 32767L);
  probe (-32769) 32767 sext16 (-32768L, 32767L);
  probe 100 32768 sext16 (-32768L, 32767L)

let test_zext_boundary_narrowing () =
  let b, params = B.create ~name:"f" ~params:[ I32 ] ~ret:I32 () in
  let x = List.hd params in
  let m = B.iconst b 200 in
  let r = B.and_ b x m in
  (* r in [0, 200]: inside the zext8 window, so the range is kept *)
  let z = B.zext b ~from:W8 r in
  B.retv b I32 r;
  let f = B.func b in
  let t = Range.compute f in
  Alcotest.(check (pair int64 int64))
    "in-window range survives zext8" (0L, 200L)
    (Range.after t ~bid:0 ~iid:z.Instr.iid r);
  (* a possibly-negative operand collapses to the full [0, 255] window *)
  let b2, params2 = B.create ~name:"g" ~params:[ I32 ] ~ret:I32 () in
  let y = List.hd params2 in
  let z2 = B.zext b2 ~from:W8 y in
  B.retv b2 I32 y;
  let g = B.func b2 in
  let t2 = Range.compute g in
  Alcotest.(check (pair int64 int64))
    "unknown operand collapses to the window" (0L, 255L)
    (Range.after t2 ~bid:0 ~iid:z2.Instr.iid y)

let test_negative_stride_loop () =
  (* for (i = 100; i > 0; i -= 3): in the body i is in [1, 100]; the
     descending update must not destroy the lower bound recovered from
     the back edge. *)
  let b, _ = B.create ~name:"f" ~params:[] ~ret:I32 () in
  let i = B.iconst b 100 in
  let zero = B.iconst b 0 in
  let three = B.iconst b 3 in
  let h = B.new_block b and body = B.new_block b and ex = B.new_block b in
  B.jmp b h;
  B.switch b h;
  B.br b Gt i zero ~ifso:body ~ifnot:ex;
  B.switch b body;
  let probe = B.add b i zero in
  B.binop_to b Sub ~dst:i i three;
  B.jmp b h;
  B.switch b ex;
  B.retv b I32 i;
  let f = B.func b in
  let t = Range.compute f in
  ignore probe;
  let first = List.hd (Cfg.body (Cfg.block f body)) in
  let lo, hi = Range.before t ~bid:body ~iid:first.Instr.iid i in
  Alcotest.(check int64) "body upper bound" 100L hi;
  Alcotest.(check int64) "body lower bound from i > 0" 1L lo;
  (* after the decrement, i may go as low as -2 *)
  let dec = List.nth (Cfg.body (Cfg.block f body)) 1 in
  let lo2, _hi2 = Range.after t ~bid:body ~iid:dec.Instr.iid i in
  Alcotest.(check int64) "post-decrement lower bound" (-2L) lo2

(* soundness: for random straight-line arithmetic on a random input, the
   interpreted 32-bit value lies within the computed range *)
let prop_range_sound =
  let open QCheck in
  Test.make ~name:"range analysis is sound on straight-line code" ~count:300
    (pair (list (pair (int_bound 6) small_signed_int)) small_signed_int)
    (fun (ops, input) ->
      let b, params = B.create ~name:"f" ~params:[ I32 ] ~ret:I32 () in
      let x = ref (List.hd params) in
      let regs = ref [ !x ] in
      List.iter
        (fun (sel, k) ->
          let c = B.iconst b k in
          let pick l = List.nth l (abs k mod List.length l) in
          let r =
            match sel mod 6 with
            | 0 -> B.add b (pick !regs) c
            | 1 -> B.sub b (pick !regs) c
            | 2 -> B.and_ b (pick !regs) c
            | 3 -> B.mul b (pick !regs) c
            | 4 -> B.or_ b (pick !regs) c
            | _ -> B.xor b (pick !regs) c
          in
          regs := r :: !regs;
          x := r)
        ops;
      B.retv b I32 !x;
      let f = B.func b in
      let t = Range.compute f in
      (* interpret with the given input *)
      let p = Helpers.prog_of_func f in
      let caller, _ = B.create ~name:"main" ~params:[] () in
      let arg = B.const caller ~ty:I32 (Sxe_ir.Eval.sext32 (Int64.of_int input)) in
      (match B.call caller ~ret:I32 "f" [ (arg, I32) ] with
      | Some r ->
          ignore (B.call caller "checksum" [ (r, I32) ]);
          B.ret caller
      | None -> assert false);
      Sxe_ir.Prog.add_func p (B.func caller);
      p.Sxe_ir.Prog.main <- "main";
      let out = Sxe_vm.Interp.run ~mode:`Canonical p in
      match out.Sxe_vm.Interp.trap with
      | Some _ -> true (* nothing to check *)
      | None ->
          (* recover the returned value from the checksum mix: checksum =
             0 * prime + v = v *)
          let v = out.Sxe_vm.Interp.checksum in
          let blk = Cfg.block f 0 in
          if (Cfg.body blk) = [] then true
          else begin
            let last = List.nth (Cfg.body blk) (List.length (Cfg.body blk) - 1) in
            match Instr.def last.Instr.op with
            | Some d ->
                let lo, hi = Range.after t ~bid:0 ~iid:last.Instr.iid d in
                Int64.compare lo v <= 0 && Int64.compare v hi <= 0
            | None -> true
          end)

let suite =
  [
    Alcotest.test_case "constants and arithmetic" `Quick test_const_and_arith;
    Alcotest.test_case "and mask" `Quick test_and_mask;
    Alcotest.test_case "rem range" `Quick test_rem_range;
    Alcotest.test_case "branch refinement" `Quick test_branch_refinement;
    Alcotest.test_case "loop counter" `Quick test_loop_counter;
    Alcotest.test_case "loop with variable bound" `Quick test_loop_variable_bound;
    Alcotest.test_case "array access refinement" `Quick test_array_refinement;
    Alcotest.test_case "W8/W16 window boundaries" `Quick test_w8_boundary_narrowing;
    Alcotest.test_case "zext window boundaries" `Quick test_zext_boundary_narrowing;
    Alcotest.test_case "negative stride loop" `Quick test_negative_stride_loop;
    QCheck_alcotest.to_alcotest prop_range_sound;
  ]
