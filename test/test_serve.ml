(** Daemon tests: the JSON codec, latency histogram and compile cache
    as units; the shared {!Compile_one} path against the certifier
    directly; and an in-process server exercised over a real
    Unix-domain socket — verdict parity with the one-shot pipeline,
    cache hits, overload backpressure, hostile input (bad escapes,
    nesting bombs, over-long lines), mid-request disconnects and a
    graceful drain. Also covers two satellites of the same PR: the
    legacy 5-column audit-baseline parser and the monotonic clock. *)

module Json = Sxe_serve.Json
module Hist = Sxe_serve.Hist
module Cache = Sxe_serve.Cache
module Compile_one = Sxe_serve.Compile_one
module Server = Sxe_serve.Server
module Client = Sxe_serve.Client
module Monoclock = Sxe_util.Monoclock
module Report = Sxe_audit.Report

(* A small program that certifies under every variant: byte loads and
   narrowing casts give the pipeline real extensions to eliminate. *)
let sample_src =
  {|
void main() {
  byte[] a = new byte[16];
  int i = 0;
  while (i < 16) {
    a[i] = i * 7;
    i = i + 1;
  }
  int s = 0;
  i = 0;
  while (i < 16) {
    s = s + a[i];
    i = i + 1;
  }
  print_int(s);
  short t = (short) (s * 3);
  print_int(t);
}
|}

let bad_src = "void main() { int x = ; }"

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let cases =
    [
      ("null", Json.Null);
      ("true", Json.Bool true);
      ("false", Json.Bool false);
      ("0", Json.Int 0L);
      ("-42", Json.Int (-42L));
      ("9223372036854775807", Json.Int Int64.max_int);
      ("\"\"", Json.Str "");
      ("\"a b\"", Json.Str "a b");
      ("[]", Json.Arr []);
      ("[1,2,3]", Json.Arr [ Json.Int 1L; Json.Int 2L; Json.Int 3L ]);
      ("{}", Json.Obj []);
      ( "{\"a\":1,\"b\":[true,null]}",
        Json.Obj
          [ ("a", Json.Int 1L); ("b", Json.Arr [ Json.Bool true; Json.Null ]) ]
      );
    ]
  in
  List.iter
    (fun (s, v) ->
      Alcotest.(check bool) ("parse " ^ s) true (Json.parse s = v);
      Alcotest.(check string) ("emit " ^ s) s (Json.to_string v))
    cases;
  (* floats parse as Float, ints stay exact *)
  (match Json.parse "1.5" with
  | Json.Float f -> Alcotest.(check (float 1e-9)) "float" 1.5 f
  | _ -> Alcotest.fail "1.5 should parse as Float");
  (match Json.parse "1e3" with
  | Json.Float f -> Alcotest.(check (float 1e-9)) "exp float" 1000.0 f
  | _ -> Alcotest.fail "1e3 should parse as Float");
  (* whitespace is tolerated, trailing garbage is not *)
  Alcotest.(check bool)
    "whitespace" true
    (Json.parse " { \"a\" : [ 1 , 2 ] } " = Json.parse "{\"a\":[1,2]}");
  List.iter
    (fun s ->
      match Json.parse s with
      | _ -> Alcotest.fail ("should not parse: " ^ s)
      | exception Json.Parse_error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "1 2"; "nul"; "\"\\q\""; "\"unterminated" ]

let test_json_strings () =
  (* escape/parse round-trip, including control chars and quotes *)
  let tricky = "a\"b\\c\nd\te\r\x01 f/g" in
  let emitted = "\"" ^ Json.escape tricky ^ "\"" in
  (match Json.parse emitted with
  | Json.Str s -> Alcotest.(check string) "escape round-trip" tricky s
  | _ -> Alcotest.fail "escaped string should parse as Str");
  (* \uXXXX decoding, including a surrogate pair -> UTF-8 *)
  (match Json.parse "\"\\u0041\\u00e9\\u20ac\"" with
  | Json.Str s -> Alcotest.(check string) "bmp escapes" "A\xc3\xa9\xe2\x82\xac" s
  | _ -> Alcotest.fail "unicode escapes");
  match Json.parse "\"\\ud83d\\ude00\"" with
  | Json.Str s ->
      Alcotest.(check string) "surrogate pair" "\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "surrogate pair"

(* Hostile input must raise [Parse_error] and nothing else: a [Failure]
   from hex decoding or a [Stack_overflow] from nesting would sail past
   the server's parse-error handling and unwind the event loop. *)
let test_json_hostile () =
  List.iter
    (fun s ->
      match Json.parse s with
      | _ -> Alcotest.fail ("should not parse: " ^ s)
      | exception Json.Parse_error _ -> ())
    [
      {|"\uZZZZ"|};
      {|"\u12g4"|};
      {|"\u1_23"|} (* int_of_string-style underscores are not JSON *);
      {|"\u0x41"|};
      {|"\u12"|};
      {|"\ud83d\u123"|} (* malformed low half of a surrogate pair *);
    ];
  (* upper- and lower-case hex still decode *)
  (match Json.parse "\"\\u004a\\u004A\"" with
  | Json.Str s -> Alcotest.(check string) "hex case" "JJ" s
  | _ -> Alcotest.fail "mixed-case hex escapes");
  (* container nesting is bounded: deep-but-sane parses, hostile does
     not — and fails with Parse_error, not Stack_overflow *)
  let deep k = String.make k '[' ^ String.make k ']' in
  (match Json.parse (deep 100) with
  | Json.Arr _ -> ()
  | _ -> Alcotest.fail "100 levels should parse");
  List.iter
    (fun s ->
      match Json.parse s with
      | _ -> Alcotest.fail "hostile nesting should be rejected"
      | exception Json.Parse_error _ -> ())
    [ deep 100_000; String.make 1_000_000 '['; String.make 100_000 '{' ]

let test_json_accessors () =
  let j = Json.parse "{\"s\":\"x\",\"n\":7,\"b\":true,\"f\":1.5}" in
  Alcotest.(check (option string)) "str" (Some "x") (Json.str "s" j);
  Alcotest.(check bool) "int" true (Json.int "n" j = Some 7L);
  Alcotest.(check (option bool)) "bool" (Some true) (Json.bool "b" j);
  (* absent member: None without default, Some default with *)
  Alcotest.(check (option string)) "absent" None (Json.str "zz" j);
  Alcotest.(check (option string))
    "absent default" (Some "d")
    (Json.str ~default:"d" "zz" j);
  (* wrong type: None even with a default — a default only fills an
     absent member, it must not mask a malformed one *)
  Alcotest.(check (option string)) "wrong type" None (Json.str "n" j);
  Alcotest.(check (option string))
    "wrong type w/ default" None
    (Json.str ~default:"d" "n" j);
  Alcotest.(check bool) "int on float" true (Json.int "f" j = None)

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

let test_hist () =
  let h = Hist.create () in
  Alcotest.(check int) "empty count" 0 (Hist.count h);
  Alcotest.(check (float 0.0)) "empty quantile" 0.0 (Hist.quantile h 0.5);
  Alcotest.(check (float 0.0)) "empty mean" 0.0 (Hist.mean_s h);
  let samples = [ 0.001; 0.002; 0.002; 0.004; 0.100 ] in
  List.iter (Hist.add h) samples;
  Alcotest.(check int) "count" 5 (Hist.count h);
  Alcotest.(check (float 1e-12)) "max exact" 0.100 (Hist.max_s h);
  Alcotest.(check (float 1e-12))
    "mean exact"
    (List.fold_left ( +. ) 0.0 samples /. 5.0)
    (Hist.mean_s h);
  (* quantiles are bucketed: relative error bounded by the 1.25 ratio *)
  let p50 = Hist.quantile h 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "p50 %.6f near 0.002" p50)
    true
    (p50 >= 0.002 /. 1.25 && p50 <= 0.002 *. 1.25);
  (* p100 never exceeds the exact max and lands in its bucket *)
  let p100 = Hist.quantile h 1.0 in
  Alcotest.(check bool)
    (Printf.sprintf "p100 %.6f bounded by max" p100)
    true
    (p100 <= 0.100 && p100 >= 0.100 /. 1.25);
  (* non-positive samples clamp into the first bucket, count still *)
  Hist.add h (-1.0);
  Alcotest.(check int) "clamped count" 6 (Hist.count h);
  (* merge accumulates element-wise *)
  let h2 = Hist.create () in
  Hist.add h2 0.050;
  Hist.merge_into ~into:h2 h;
  Alcotest.(check int) "merged count" 7 (Hist.count h2);
  Alcotest.(check (float 1e-12)) "merged max" 0.100 (Hist.max_s h2)

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let cache_key ?(variant = "all") ?(arch = "ia64") ?(maxlen = 1024L)
    ?(emit = false) source =
  Cache.key ~variant ~arch ~maxlen ~emit ~source

let test_cache_basic () =
  let c = Cache.create ~max_entries:8 () in
  let k = cache_key "src" in
  Alcotest.(check (option string)) "miss" None (Cache.find c k);
  Cache.add c k "payload";
  Alcotest.(check (option string)) "hit" (Some "payload") (Cache.find c k);
  Alcotest.(check int) "hits" 1 (Cache.hits c);
  Alcotest.(check int) "misses" 1 (Cache.misses c);
  Alcotest.(check int) "size" 1 (Cache.size c);
  (* re-adding an existing key is a first-wins no-op *)
  Cache.add c k "other";
  Alcotest.(check (option string)) "first wins" (Some "payload") (Cache.find c k);
  Alcotest.(check int) "no dup entry" 1 (Cache.size c)

let test_cache_key_sensitivity () =
  let base = cache_key "src" in
  List.iter
    (fun (what, k) ->
      Alcotest.(check bool) (what ^ " changes key") false (String.equal base k))
    [
      ("variant", cache_key ~variant:"baseline" "src");
      ("arch", cache_key ~arch:"ppc64" "src");
      ("maxlen", cache_key ~maxlen:2048L "src");
      ("emit", cache_key ~emit:true "src");
      ("source", cache_key "src ");
    ];
  Alcotest.(check string) "deterministic" base (cache_key "src")

let test_cache_eviction () =
  let c = Cache.create ~max_entries:2 () in
  let k i = cache_key (string_of_int i) in
  Cache.add c (k 1) "1";
  Cache.add c (k 2) "2";
  Cache.add c (k 3) "3";
  (* FIFO: 1 is gone, 2 and 3 remain *)
  Alcotest.(check (option string)) "oldest evicted" None (Cache.find c (k 1));
  Alcotest.(check (option string)) "second kept" (Some "2") (Cache.find c (k 2));
  Alcotest.(check (option string)) "third kept" (Some "3") (Cache.find c (k 3));
  Alcotest.(check int) "bounded" 2 (Cache.size c);
  (* max_entries <= 0 disables storage entirely *)
  let off = Cache.create ~max_entries:0 () in
  Cache.add off (k 1) "1";
  Alcotest.(check (option string)) "disabled" None (Cache.find off (k 1));
  Alcotest.(check int) "disabled size" 0 (Cache.size off)

(* ------------------------------------------------------------------ *)
(* Compile_one: the shared pipeline                                    *)
(* ------------------------------------------------------------------ *)

let maxlen = Sxe_ir.Types.max_array_length

let test_compile_one () =
  (* every registered variant name resolves and back *)
  List.iter
    (fun (name, v) ->
      Alcotest.(check bool)
        ("variant " ^ name) true
        (Compile_one.variant_of_name name = Some v))
    Compile_one.variant_names;
  Alcotest.(check bool)
    "unknown variant" true
    (Compile_one.variant_of_name "nope" = None);
  Alcotest.(check bool) "unknown arch" true (Compile_one.arch_of_name "x86" = None);
  (* the happy path certifies and reports work done *)
  let config = Compile_one.config_of `All in
  (match Compile_one.run_source ~config ~maxlen sample_src with
  | Error e -> Alcotest.fail ("unexpected frontend error: " ^ e)
  | Ok o ->
      Alcotest.(check (list string))
        "certified"
        []
        (List.map (fun _ -> "error") o.Compile_one.errors);
      Alcotest.(check bool)
        "extensions generated" true
        (o.Compile_one.stats.Sxe_core.Stats.generated > 0);
      Alcotest.(check bool) "no asm unless asked" true (o.Compile_one.asm = None));
  (* emit produces assembly through the same call *)
  (match Compile_one.run_source ~emit:true ~config ~maxlen sample_src with
  | Error e -> Alcotest.fail ("unexpected frontend error: " ^ e)
  | Ok o -> (
      match o.Compile_one.asm with
      | Some a -> Alcotest.(check bool) "asm nonempty" true (String.length a > 0)
      | None -> Alcotest.fail "emit:true must produce asm"));
  (* frontend errors are a result, not an exception *)
  match Compile_one.run_source ~config ~maxlen bad_src with
  | Error msg -> Alcotest.(check bool) "error message" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "bad source must not compile"

(* The verdict the daemon embeds must be the certifier's own: run the
   pipeline directly and compare the canonicalized errors JSON. *)
let test_compile_one_matches_certifier () =
  let config = Compile_one.config_of ~maxlen:4L `Baseline in
  (* tiny maxlen forces certification errors on array-heavy code *)
  match Compile_one.run_source ~config ~maxlen:4L sample_src with
  | Error e -> Alcotest.fail ("unexpected frontend error: " ^ e)
  | Ok o ->
      let ours = Sxe_check.Check.errors_to_json o.Compile_one.errors in
      (* the fragment the server would embed is itself valid JSON *)
      let reparsed = Json.parse ours in
      Alcotest.(check bool)
        "errors fragment is a JSON array" true
        (match reparsed with Json.Arr _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* In-process server over a real socket                                *)
(* ------------------------------------------------------------------ *)

let temp_socket_path () =
  let p = Filename.temp_file "sxe-serve-test" ".sock" in
  (* claim_socket treats a non-socket file as stale and unlinks it *)
  p

let with_server ?(jobs = 1) ?(queue_max = 64) ?(timeout_s = 30.0)
    ?(cache_max = 4096) f =
  let socket_path = temp_socket_path () in
  let config = { Server.socket_path; jobs; queue_max; timeout_s; cache_max } in
  let t = Server.create config in
  let ready = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Server.serve ~on_ready:(fun () -> Atomic.set ready true) t)
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.002
  done;
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      Domain.join d;
      try Sys.remove socket_path with Sys_error _ -> ())
    (fun () -> f socket_path t)

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

(* Read from a raw fd until [n] complete lines have arrived. *)
let recv_lines fd n =
  let buf = Bytes.create 65536 in
  let acc = Buffer.create 4096 in
  let newlines () =
    String.fold_left
      (fun a ch -> if ch = '\n' then a + 1 else a)
      0 (Buffer.contents acc)
  in
  while newlines () < n do
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> failwith "server closed the connection early"
    | k -> Buffer.add_subbytes acc buf 0 k
  done;
  String.split_on_char '\n' (Buffer.contents acc)
  |> List.filter (fun s -> s <> "")

let compile_req ?(variant = "all") ?id source =
  let id_field =
    match id with
    | None -> ""
    | Some i -> Printf.sprintf "\"id\":\"%s\"," (Json.escape i)
  in
  Printf.sprintf "{%s\"op\":\"compile\",\"variant\":\"%s\",\"source\":\"%s\"}\n"
    id_field (Json.escape variant) (Json.escape source)

let test_serve_ping_and_errors () =
  with_server (fun path _t ->
      let c = Client.connect path in
      let pong = Client.request c "{\"op\":\"ping\"}" in
      Alcotest.(check (option bool))
        "pong" (Some true)
        (Json.bool "pong" (Json.parse pong));
      (* id round-trips verbatim, including non-string ids *)
      let r = Client.request c "{\"id\":17,\"op\":\"ping\"}" in
      Alcotest.(check bool) "int id echoed" true
        (Json.int "id" (Json.parse r) = Some 17L);
      (* malformed line -> parse error, connection stays usable *)
      let r = Client.request c "{oops" in
      Alcotest.(check (option string))
        "parse error" (Some "parse")
        (Json.str "error" (Json.parse r));
      let r = Client.request c "{\"op\":\"frobnicate\"}" in
      Alcotest.(check (option string))
        "unknown op" (Some "bad_request")
        (Json.str "error" (Json.parse r));
      let r = Client.request c "{\"op\":\"compile\"}" in
      Alcotest.(check (option string))
        "missing source" (Some "bad_request")
        (Json.str "error" (Json.parse r));
      (* hostile escapes and pathological nesting are parse errors the
         connection survives, not exceptions the daemon dies of *)
      let r = Client.request c "{\"op\":\"ping\",\"x\":\"\\uZZZZ\"}" in
      Alcotest.(check (option string))
        "bad unicode escape" (Some "parse")
        (Json.str "error" (Json.parse r));
      let r = Client.request c (String.make 100_000 '[') in
      Alcotest.(check (option string))
        "nesting bomb" (Some "parse")
        (Json.str "error" (Json.parse r));
      (* wrong-typed variant/arch are bad requests, not silently the
         default config *)
      let r =
        Client.request c
          "{\"op\":\"compile\",\"source\":\"void main() {}\",\"variant\":3}"
      in
      Alcotest.(check (option string))
        "non-string variant" (Some "bad_request")
        (Json.str "error" (Json.parse r));
      let r =
        Client.request c
          "{\"op\":\"compile\",\"source\":\"void main() {}\",\"arch\":[]}"
      in
      Alcotest.(check (option string))
        "non-string arch" (Some "bad_request")
        (Json.str "error" (Json.parse r));
      let r = Client.compile ~variant:"warp-speed" c sample_src in
      Alcotest.(check (option string))
        "unknown variant" (Some "bad_request")
        (Json.str "error" (Json.parse r));
      (* frontend errors are request errors, not daemon crashes *)
      let r = Client.compile c bad_src in
      Alcotest.(check (option string))
        "frontend error" (Some "frontend")
        (Json.str "error" (Json.parse r));
      Alcotest.(check (option bool))
        "still alive" (Some true)
        (Json.bool "pong" (Json.parse (Client.request c "{\"op\":\"ping\"}")));
      Client.close c)

(* The daemon's verdict must be the same computation as the one-shot
   pipeline: same certified bit, same stats, same canonical errors. *)
let test_serve_verdict_parity () =
  with_server (fun path _t ->
      let c = Client.connect path in
      List.iter
        (fun vname ->
          let resp = Json.parse (Client.compile ~variant:vname c sample_src) in
          let variant =
            Option.get (Compile_one.variant_of_name vname)
          in
          let config = Compile_one.config_of variant in
          let direct =
            match Compile_one.run_source ~config ~maxlen sample_src with
            | Ok o -> o
            | Error e -> Alcotest.fail ("direct pipeline failed: " ^ e)
          in
          Alcotest.(check (option bool))
            (vname ^ " ok") (Some true) (Json.bool "ok" resp);
          Alcotest.(check (option bool))
            (vname ^ " certified")
            (Some (direct.Compile_one.errors = []))
            (Json.bool "certified" resp);
          Alcotest.(check (option string))
            (vname ^ " variant name")
            (Some direct.Compile_one.config.Sxe_core.Config.name)
            (Json.str "variant" resp);
          (* canonical errors parity: daemon field == certifier output *)
          let direct_errors =
            Json.to_string
              (Json.parse
                 (Sxe_check.Check.errors_to_json direct.Compile_one.errors))
          in
          let served_errors =
            match Json.member "errors" resp with
            | Some e -> Json.to_string e
            | None -> Alcotest.fail (vname ^ ": response without errors field")
          in
          Alcotest.(check string) (vname ^ " errors") direct_errors served_errors;
          (* stats parity on the fields the response carries *)
          let stats =
            match Json.member "stats" resp with
            | Some s -> s
            | None -> Alcotest.fail (vname ^ ": response without stats")
          in
          let s = direct.Compile_one.stats in
          List.iter
            (fun (field, expect) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s stats.%s" vname field)
                true
                (Json.int field stats = Some (Int64.of_int expect)))
            [
              ("generated", s.Sxe_core.Stats.generated);
              ("inserted", s.Sxe_core.Stats.inserted);
              ("eliminated", s.Sxe_core.Stats.eliminated);
              ("remaining", s.Sxe_core.Stats.remaining);
              ("remaining_zext", s.Sxe_core.Stats.remaining_zext);
            ])
        [ "baseline"; "first"; "all" ];
      Client.close c)

let test_serve_cache_hit () =
  with_server (fun path _t ->
      let c = Client.connect path in
      let r1 = Client.compile c sample_src in
      let r2 = Client.compile c sample_src in
      Alcotest.(check (option bool))
        "first is a miss" (Some false)
        (Json.bool "cached" (Json.parse r1));
      Alcotest.(check (option bool))
        "second is a hit" (Some true)
        (Json.bool "cached" (Json.parse r2));
      (* byte-identical verdict modulo the cached flag *)
      let norm s =
        match String.index_opt s ',' with
        | Some i ->
            (* drop the leading {"cached":...,} field *)
            "{" ^ String.sub s (i + 1) (String.length s - i - 1)
        | None -> s
      in
      Alcotest.(check string) "hit payload byte-identical" (norm r1) (norm r2);
      (* a different variant is a different key *)
      let r3 = Client.compile ~variant:"baseline" c sample_src in
      Alcotest.(check (option bool))
        "other variant misses" (Some false)
        (Json.bool "cached" (Json.parse r3));
      (* frontend errors are deterministic, so they cache too *)
      let e1 = Client.compile c bad_src in
      let e2 = Client.compile c bad_src in
      Alcotest.(check (option bool))
        "error cached" (Some true)
        (Json.bool "cached" (Json.parse e2));
      Alcotest.(check string) "error payload stable" (norm e1) (norm e2);
      (* metrics agree *)
      let m = Json.parse (Client.request c "{\"op\":\"metrics\"}") in
      let metrics = Option.get (Json.member "metrics" m) in
      let cache = Option.get (Json.member "cache" metrics) in
      Alcotest.(check bool)
        "hits counted" true
        (match Json.int "hits" cache with Some h -> h >= 2L | None -> false);
      Alcotest.(check bool)
        "latency recorded" true
        (match Json.member "latency" metrics with
        | Some lat -> (
            match Json.int "count" lat with Some n -> n > 0L | None -> false)
        | None -> false);
      Client.close c)

let test_serve_overload () =
  (* jobs=1, queue_max=1: a pipelined burst of unique (cache-missing)
     requests must draw "overloaded" replies, and the daemon must keep
     serving afterwards. *)
  with_server ~jobs:1 ~queue_max:1 (fun path _t ->
      let c = Client.connect path in
      let n = 16 in
      let burst = Buffer.create 4096 in
      for i = 0 to n - 1 do
        Buffer.add_string burst
          (compile_req (Printf.sprintf "%s// burst-%d\n" sample_src i))
      done;
      write_all (Client.fd c) (Buffer.contents burst);
      let replies = recv_lines (Client.fd c) n in
      Alcotest.(check int) "one reply per request" n (List.length replies);
      let overloaded, served =
        List.partition
          (fun r -> Json.str "error" (Json.parse r) = Some "overloaded")
          replies
      in
      Alcotest.(check bool)
        (Printf.sprintf "backpressure engaged (%d overloaded)"
           (List.length overloaded))
        true
        (List.length overloaded > 0);
      Alcotest.(check bool) "some requests served" true (List.length served > 0);
      List.iter
        (fun r ->
          Alcotest.(check (option bool))
            "served ok" (Some true)
            (Json.bool "ok" (Json.parse r)))
        served;
      Client.close c;
      (* after the burst the daemon still answers promptly *)
      let c2 = Client.connect path in
      Alcotest.(check (option bool))
        "alive after overload" (Some true)
        (Json.bool "ok" (Json.parse (Client.compile c2 sample_src)));
      Client.close c2)

(* A connection that exceeds the 16 MB line cap is protocol-broken and
   must be dropped — but only after its error reply is flushed, so the
   client learns why instead of seeing a bare hang-up. *)
let test_serve_overlong_line () =
  with_server (fun path _t ->
      let c = Client.connect path in
      let fd = Client.fd c in
      let chunk = String.make 65536 'x' in
      (* 17 MB with no newline; once the server turns off reading and
         closes, our blocked write fails — that is the success path *)
      (try
         for _ = 1 to 272 do
           write_all fd chunk
         done
       with Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> ());
      let reply =
        match recv_lines fd 1 with
        | [ r ] -> r
        | rs -> Alcotest.fail (Printf.sprintf "%d replies" (List.length rs))
      in
      Alcotest.(check (option string))
        "error reply delivered before close" (Some "bad_request")
        (Json.str "error" (Json.parse reply));
      Alcotest.(check (option string))
        "detail names the cap"
        (Some "request line too long")
        (Json.str "detail" (Json.parse reply));
      (* the connection is then closed by the server side *)
      let buf = Bytes.create 16 in
      let rec drained () =
        match Unix.read fd buf 0 16 with
        | 0 -> true
        | _ -> drained ()
        | exception Unix.Unix_error (ECONNRESET, _, _) -> true
      in
      Alcotest.(check bool) "connection closed after reply" true (drained ());
      Client.close c;
      (* and the daemon is unharmed *)
      let c2 = Client.connect path in
      Alcotest.(check (option bool))
        "daemon alive" (Some true)
        (Json.bool "ok" (Json.parse (Client.compile c2 sample_src)));
      Client.close c2)

let test_serve_client_disconnect () =
  (* A client that sends a compile and vanishes before reading must
     cost only its own reply: no crash, no leaked pool slot, next
     connection served normally. *)
  with_server ~jobs:2 (fun path t ->
      for i = 0 to 4 do
        let c = Client.connect path in
        write_all (Client.fd c)
          (compile_req (Printf.sprintf "%s// ghost-%d\n" sample_src i));
        Client.close c
      done;
      (* half-close variant: request sent, write side shut, reader gone *)
      let c = Client.connect path in
      write_all (Client.fd c) (compile_req (sample_src ^ "// ghost-half\n"));
      (try Unix.shutdown (Client.fd c) Unix.SHUTDOWN_ALL
       with Unix.Unix_error _ -> ());
      Client.close c;
      (* the daemon survives and still compiles for the living *)
      let c2 = Client.connect path in
      let r = Client.compile c2 sample_src in
      Alcotest.(check (option bool))
        "served after disconnects" (Some true)
        (Json.bool "ok" (Json.parse r));
      Alcotest.(check (option bool))
        "verdict intact" (Some true)
        (Json.bool "certified" (Json.parse r));
      Alcotest.(check bool)
        "requests were processed" true
        (Server.requests_served t >= 1);
      Client.close c2)

let test_serve_concurrent () =
  with_server ~jobs:2 (fun path _t ->
      let per_domain = 20 in
      let worker k () =
        let c = Client.connect path in
        let bad = ref 0 in
        for i = 0 to per_domain - 1 do
          (* a mix of shared (cacheable) and unique bodies *)
          let src =
            if i mod 2 = 0 then sample_src
            else Printf.sprintf "%s// d%d-%d\n" sample_src k i
          in
          let j = Json.parse (Client.compile c src) in
          if Json.bool "ok" j <> Some true || Json.bool "certified" j <> Some true
          then incr bad
        done;
        Client.close c;
        !bad
      in
      let domains = List.init 4 (fun k -> Domain.spawn (worker k)) in
      let bad = List.fold_left (fun a d -> a + Domain.join d) 0 domains in
      Alcotest.(check int) "all concurrent verdicts ok" 0 bad;
      let c = Client.connect path in
      let m = Json.parse (Client.request c "{\"op\":\"metrics\"}") in
      let metrics = Option.get (Json.member "metrics" m) in
      Alcotest.(check bool)
        "all requests counted" true
        (match Json.int "compile_requests" metrics with
        | Some n -> n >= Int64.of_int (4 * per_domain)
        | None -> false);
      Client.close c)

let test_serve_drain () =
  let socket_path = temp_socket_path () in
  let config =
    { (Server.default_config ~socket_path) with Server.jobs = 1 }
  in
  let t = Server.create config in
  let ready = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Server.serve ~on_ready:(fun () -> Atomic.set ready true) t)
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.002
  done;
  let c = Client.connect socket_path in
  (* a compile already queued before shutdown must still be answered:
     pipeline both requests, then read both replies. The shutdown ack
     comes back inline while the compile waits for its batch, so the
     two replies are correlated by id, not by order. *)
  write_all (Client.fd c) (compile_req ~id:"c" sample_src);
  write_all (Client.fd c) "{\"id\":\"s\",\"op\":\"shutdown\"}\n";
  let replies = List.map Json.parse (recv_lines (Client.fd c) 2) in
  Alcotest.(check int) "two replies" 2 (List.length replies);
  let by_id i =
    match List.find_opt (fun j -> Json.str "id" j = Some i) replies with
    | Some j -> j
    | None -> Alcotest.fail ("no reply with id " ^ i)
  in
  Alcotest.(check (option bool))
    "queued compile answered during drain" (Some true)
    (Json.bool "ok" (by_id "c"));
  Alcotest.(check (option bool))
    "shutdown acknowledged" (Some true)
    (Json.bool "stopping" (by_id "s"));
  Client.close c;
  (* the loop exits on its own — no Server.stop here *)
  Domain.join d;
  Alcotest.(check bool)
    "socket file removed" false
    (Sys.file_exists socket_path);
  (* nobody is listening anymore *)
  (match Client.connect socket_path with
  | c ->
      Client.close c;
      Alcotest.fail "connect should fail after drain"
  | exception Unix.Unix_error _ -> ());
  Alcotest.(check bool) "drain served requests" true (Server.requests_served t >= 2)

(* ------------------------------------------------------------------ *)
(* Satellite: legacy 5-column baseline TSV parsing                     *)
(* ------------------------------------------------------------------ *)

let test_baseline_legacy_format () =
  let rows =
    [
      ("alpha", "all", 3, 1, 2, 5, 1);
      ("alpha", "baseline", 30, 4, 6, 33, 7);
      ("beta", "all", 0, 0, 1, 1, 0);
    ]
  in
  let seven =
    Report.baseline_header ^ "\n"
    ^ String.concat "\n"
        (List.map
           (fun (i, v, r, n, u, s, z) ->
             Printf.sprintf "%s\t%s\t%d\t%d\t%d\t%d\t%d" i v r n u s z)
           rows)
    ^ "\n"
  in
  let five =
    "# pre-kind baseline, no sext/zext columns\n"
    ^ String.concat "\n"
        (List.map
           (fun (i, v, r, n, u, _, _) ->
             Printf.sprintf "%s\t%s\t%d\t%d\t%d" i v r n u)
           rows)
    ^ "\n"
  in
  let p7 = Report.parse_baseline seven in
  let p5 = Report.parse_baseline five in
  Alcotest.(check int) "row count (7col)" 3 (List.length p7);
  Alcotest.(check int) "row count (5col)" 3 (List.length p5);
  (* the gate reads only verdict counts: both formats must agree *)
  Alcotest.(check bool) "legacy == current" true (p5 = p7);
  (match List.assoc_opt ("alpha", "baseline") p7 with
  | Some c ->
      Alcotest.(check int) "redundant" 30 c.Report.redundant;
      Alcotest.(check int) "necessary" 4 c.Report.necessary;
      Alcotest.(check int) "unknown" 6 c.Report.unknown
  | None -> Alcotest.fail "missing row");
  (* blank lines and comments are skipped in both eras *)
  let p = Report.parse_baseline "\n# c\n\n  \nx\ty\t1\t2\t3\n" in
  Alcotest.(check int) "noise skipped" 1 (List.length p);
  (* malformed rows fail loudly, never gate vacuously *)
  List.iter
    (fun body ->
      match Report.parse_baseline body with
      | _ -> Alcotest.fail ("should reject: " ^ String.escaped body)
      | exception Failure _ -> ())
    [
      "x\ty\t1\t2\n";             (* too few columns *)
      "x\ty\t1\t2\t3\t4\n";       (* six columns: neither era *)
      "x\ty\t1\t2\tnope\n";       (* non-numeric count *)
      "x\ty\t1\t2\t3\t4\t5\t6\n"; (* too many columns *)
    ]

(* ------------------------------------------------------------------ *)
(* Satellite: monotonic clock                                          *)
(* ------------------------------------------------------------------ *)

let test_monoclock () =
  (* never decreasing, even across many rapid reads *)
  let prev = ref (Monoclock.now_ns ()) in
  for _ = 1 to 10_000 do
    let t = Monoclock.now_ns () in
    if Int64.compare t !prev < 0 then
      Alcotest.failf "monotonic clock went backwards: %Ld -> %Ld" !prev t;
    prev := t
  done;
  (* elapsed_s measures a real sleep, and is never negative *)
  let t0 = Monoclock.now_ns () in
  Unix.sleepf 0.01;
  let dt = Monoclock.elapsed_s t0 in
  Alcotest.(check bool)
    (Printf.sprintf "elapsed %.4fs covers the sleep" dt)
    true
    (dt >= 0.009 && dt < 10.0);
  Alcotest.(check bool)
    "now_s consistent with now_ns" true
    (abs_float (Monoclock.now_s () -. (Int64.to_float (Monoclock.now_ns ()) /. 1e9))
    < 1.0)

let suite =
  [
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json strings" `Quick test_json_strings;
    Alcotest.test_case "json hostile input" `Quick test_json_hostile;
    Alcotest.test_case "json accessors" `Quick test_json_accessors;
    Alcotest.test_case "latency histogram" `Quick test_hist;
    Alcotest.test_case "cache basics" `Quick test_cache_basic;
    Alcotest.test_case "cache key sensitivity" `Quick test_cache_key_sensitivity;
    Alcotest.test_case "cache eviction" `Quick test_cache_eviction;
    Alcotest.test_case "compile_one pipeline" `Quick test_compile_one;
    Alcotest.test_case "compile_one errors json" `Quick
      test_compile_one_matches_certifier;
    Alcotest.test_case "serve: ping and request errors" `Quick
      test_serve_ping_and_errors;
    Alcotest.test_case "serve: verdict parity" `Quick test_serve_verdict_parity;
    Alcotest.test_case "serve: cache hits" `Quick test_serve_cache_hit;
    Alcotest.test_case "serve: overload backpressure" `Quick test_serve_overload;
    Alcotest.test_case "serve: over-long request line" `Quick
      test_serve_overlong_line;
    Alcotest.test_case "serve: client disconnect" `Quick
      test_serve_client_disconnect;
    Alcotest.test_case "serve: concurrent clients" `Quick test_serve_concurrent;
    Alcotest.test_case "serve: graceful drain" `Quick test_serve_drain;
    Alcotest.test_case "baseline: legacy 5-column format" `Quick
      test_baseline_legacy_format;
    Alcotest.test_case "monoclock monotonicity" `Quick test_monoclock;
  ]
