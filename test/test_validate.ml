(** Negative tests for IR validation: deliberately malformed CFGs must be
    rejected with a diagnostic naming the offending site. The fuzzing
    oracle leans on [Validate.errors] to classify optimizer output that
    went structurally wrong, so these checks pin down exactly what the
    validator can see. *)

open Sxe_ir
open Sxe_ir.Types
module B = Builder

let has_err pat errs =
  List.exists
    (fun e ->
      let n = String.length e and m = String.length pat in
      let rec go i = i + m <= n && (String.sub e i m = pat || go (i + 1)) in
      go 0)
    errs

let check_has name pat errs =
  Alcotest.(check bool)
    (Printf.sprintf "%s reported (got: %s)" name (String.concat "; " errs))
    true (has_err pat errs)

(** A minimal well-formed function to corrupt. *)
let make_base () =
  let b, _ = B.create ~name:"f" ~params:[ I32 ] ~ret:I32 () in
  let x = B.iconst b 5 in
  let y = B.iconst b 7 in
  let z = B.binop b Add x y in
  B.retv b I32 z;
  B.func b

let test_wellformed_base () =
  let f = make_base () in
  Alcotest.(check (list string)) "base has no errors" [] (Validate.errors f);
  Alcotest.(check (list string)) "base has no def errors" [] (Validate.def_errors f)

let test_dangling_successor () =
  let f = make_base () in
  let b0 = Cfg.block f (Cfg.entry f) in
  Cfg.set_term b0 (Instr.Jmp 99);
  check_has "dangling jmp" "label B99 out of range" (Validate.errors f);
  let g = make_base () in
  let r = List.hd (List.map fst g.Cfg.params) in
  Cfg.set_term
    (Cfg.block g (Cfg.entry g))
    (Instr.Br { cond = Eq; l = r; r; w = W32; ifso = 0; ifnot = -3 });
  check_has "dangling br" "label B-3 out of range" (Validate.errors g)

let test_wrong_width_operand () =
  (* a W64 binop over I32 registers *)
  let b, _ = B.create ~name:"f" ~params:[] ~ret:I32 () in
  let x = B.iconst b 1 in
  let y = B.iconst b 2 in
  let z = B.binop b Add x y in
  B.retv b I32 z;
  let f = B.func b in
  Cfg.iter_blocks
    (fun blk ->
      List.iter
        (fun (i : Instr.t) ->
          match i.Instr.op with
          | Instr.Binop bo -> Cfg.set_op blk i (Instr.Binop { bo with w = W64 })
          | _ -> ())
        (Cfg.body blk))
    f;
  check_has "width mismatch" "has type i32, expected i64" (Validate.errors f)

let test_sub32_alu_width () =
  let f = make_base () in
  Cfg.iter_blocks
    (fun blk ->
      List.iter
        (fun (i : Instr.t) ->
          match i.Instr.op with
          | Instr.Binop bo -> Cfg.set_op blk i (Instr.Binop { bo with w = W8 })
          | _ -> ())
        (Cfg.body blk))
    f;
  check_has "sub-32-bit width" "sub-32-bit alu width" (Validate.errors f)

let test_sub32_compare_width () =
  (* there is no 8/16-bit compare on the modeled target: Cmp and Br must
     be W32/W64 only *)
  let b, params = B.create ~name:"f" ~params:[ I32 ] ~ret:I32 () in
  let x = List.hd params in
  let c = B.cmp b Lt x x in
  B.retv b I32 c;
  let f = B.func b in
  Cfg.iter_blocks
    (fun blk ->
      List.iter
        (fun (i : Instr.t) ->
          match i.Instr.op with
          | Instr.Cmp co -> Cfg.set_op blk i (Instr.Cmp { co with w = W16 })
          | _ -> ())
        (Cfg.body blk))
    f;
  check_has "sub-32-bit compare" "sub-32-bit compare width" (Validate.errors f);
  let g = make_base () in
  let r = List.hd (List.map fst g.Cfg.params) in
  Cfg.set_term
    (Cfg.block g (Cfg.entry g))
    (Instr.Br { cond = Eq; l = r; r; w = W8; ifso = 0; ifnot = 0 });
  check_has "sub-32-bit branch compare" "sub-32-bit branch compare width"
    (Validate.errors g)

let test_register_out_of_range () =
  let f = make_base () in
  let blk = Cfg.block f (Cfg.entry f) in
  (match (Cfg.body blk) with
  | (i : Instr.t) :: _ -> (
      match i.Instr.op with
      | Instr.Const c -> Cfg.set_op blk i (Instr.Const { c with dst = 999 })
      | _ -> Alcotest.fail "expected const first")
  | [] -> Alcotest.fail "expected non-empty body");
  check_has "register range" "register r999 out of range" (Validate.errors f)

let test_i32_constant_range () =
  let b, _ = B.create ~name:"f" ~params:[] ~ret:I32 () in
  let x = B.const b ~ty:I32 0x1_0000_0000L in
  B.retv b I32 x;
  check_has "i32 const range" "out of range" (Validate.errors (B.func b))

let test_extend_from_w64 () =
  let b, _ = B.create ~name:"f" ~params:[] ~ret:I32 () in
  let x = B.iconst b 3 in
  B.retv b I32 x;
  let f = B.func b in
  let blk = Cfg.block f (Cfg.entry f) in
  Cfg.set_body blk
    ((Cfg.body blk) @ [ Cfg.mk_instr f (Instr.Sext { r = x; from = W64 }) ]);
  check_has "extend width" "sext from width 64" (Validate.errors f)

let test_zextend_from_w64 () =
  let b, _ = B.create ~name:"f" ~params:[] ~ret:I32 () in
  let x = B.iconst b 3 in
  B.retv b I32 x;
  let f = B.func b in
  let blk = Cfg.block f (Cfg.entry f) in
  Cfg.set_body blk
    ((Cfg.body blk) @ [ Cfg.mk_instr f (Instr.Zext { r = x; from = W64 }) ]);
  check_has "zextend width" "zext from width 64" (Validate.errors f)

let test_zextend_non_int_target () =
  let b, _ = B.create ~name:"f" ~params:[ F64 ] ~ret:I32 () in
  let x = B.iconst b 3 in
  B.retv b I32 x;
  let f = B.func b in
  let p = List.hd (List.map fst f.Cfg.params) in
  let blk = Cfg.block f (Cfg.entry f) in
  Cfg.set_body blk
    ((Cfg.body blk) @ [ Cfg.mk_instr f (Instr.Zext { r = p; from = W16 }) ]);
  check_has "zextend target type" "expected i32" (Validate.errors f)

let test_return_type_mismatch () =
  let b, _ = B.create ~name:"f" ~params:[] ~ret:I32 () in
  let x = B.iconst b 1 in
  B.retv b I32 x;
  let f = B.func b in
  Cfg.set_term (Cfg.block f (Cfg.entry f)) (Instr.Ret None);
  check_has "missing return" "missing return value" (Validate.errors f)

let test_use_before_def_straightline () =
  (* read a register that is never written: the type checker cannot see
     it, the definite-assignment analysis must *)
  let b, _ = B.create ~name:"f" ~params:[] ~ret:I32 () in
  let x = B.iconst b 1 in
  B.retv b I32 x;
  let f = B.func b in
  let ghost = Cfg.fresh_reg f I32 in
  let blk = Cfg.block f (Cfg.entry f) in
  Cfg.set_body blk
    (Cfg.mk_instr f (Instr.Mov { dst = x; src = ghost; ty = I32 }) :: (Cfg.body blk));
  Alcotest.(check (list string)) "type checker is blind to it" [] (Validate.errors f);
  check_has "use before def"
    (Printf.sprintf "r%d used before definite assignment" ghost)
    (Validate.def_errors f)

let test_use_before_def_one_branch () =
  (* defined on one path only: a must-analysis rejects the merge use *)
  let b, params = B.create ~name:"f" ~params:[ I32 ] ~ret:I32 () in
  let p = List.hd params in
  let join = B.new_block b in
  let deflt = B.new_block b in
  let f_partial = Cfg.fresh_reg (B.func b) I32 in
  B.br b Gt p p ~ifso:deflt ~ifnot:join;
  B.switch b deflt;
  B.mov_to b ~dst:f_partial ~src:p I32;
  B.jmp b join;
  B.switch b join;
  B.retv b I32 f_partial;
  let f = B.func b in
  Alcotest.(check (list string)) "structurally fine" [] (Validate.errors f);
  check_has "partial definition"
    (Printf.sprintf "r%d used before definite assignment" f_partial)
    (Validate.def_errors f)

let test_def_on_both_branches_ok () =
  let b, params = B.create ~name:"f" ~params:[ I32 ] ~ret:I32 () in
  let p = List.hd params in
  let t = B.new_block b and e = B.new_block b and join = B.new_block b in
  let v = Cfg.fresh_reg (B.func b) I32 in
  B.br b Gt p p ~ifso:t ~ifnot:e;
  B.switch b t;
  B.mov_to b ~dst:v ~src:p I32;
  B.jmp b join;
  B.switch b e;
  B.mov_to b ~dst:v ~src:p I32;
  B.jmp b join;
  B.switch b join;
  B.retv b I32 v;
  let f = B.func b in
  Alcotest.(check (list string)) "no def errors when both paths define" []
    (Validate.def_errors f)

let test_loop_carried_def_ok () =
  (* defined before the loop, used inside it: the back edge must not
     erase the definition (fixpoint over the cycle) *)
  let b, params = B.create ~name:"f" ~params:[ I32 ] ~ret:I32 () in
  let p = List.hd params in
  let head = B.new_block b and body = B.new_block b and exit_ = B.new_block b in
  let acc = B.iconst b 0 in
  B.jmp b head;
  B.switch b head;
  B.br b Gt acc p ~ifso:exit_ ~ifnot:body;
  B.switch b body;
  B.binop_to b Add ~dst:acc acc p;
  B.jmp b head;
  B.switch b exit_;
  B.retv b I32 acc;
  let f = B.func b in
  Alcotest.(check (list string)) "loop-carried def accepted" []
    (Validate.def_errors f)

let test_fuzz_breakages_all_detected () =
  (* tie-in with the mutation engine: every structural breakage it can
     make must surface through one of the two validators *)
  List.iter
    (fun br ->
      let rng = Sxe_fuzz.Rng.create ~seed:17 in
      let f = Sxe_fuzz.Gen_ir.generate (Sxe_fuzz.Rng.create ~seed:17) in
      if Sxe_fuzz.Mutate.break_ rng br f then
        Alcotest.(check bool)
          (Sxe_fuzz.Mutate.string_of_breakage br ^ " detected")
          true
          (Validate.errors f <> [] || Validate.def_errors f <> []))
    Sxe_fuzz.Mutate.all_breakages

let suite =
  [
    Alcotest.test_case "well-formed base accepted" `Quick test_wellformed_base;
    Alcotest.test_case "dangling successor" `Quick test_dangling_successor;
    Alcotest.test_case "wrong-width operand" `Quick test_wrong_width_operand;
    Alcotest.test_case "sub-32-bit alu width" `Quick test_sub32_alu_width;
    Alcotest.test_case "sub-32-bit compare width" `Quick test_sub32_compare_width;
    Alcotest.test_case "register out of range" `Quick test_register_out_of_range;
    Alcotest.test_case "i32 constant out of range" `Quick test_i32_constant_range;
    Alcotest.test_case "extend from w64" `Quick test_extend_from_w64;
    Alcotest.test_case "zextend from w64" `Quick test_zextend_from_w64;
    Alcotest.test_case "zextend non-int target" `Quick test_zextend_non_int_target;
    Alcotest.test_case "return type mismatch" `Quick test_return_type_mismatch;
    Alcotest.test_case "use before def: straight line" `Quick
      test_use_before_def_straightline;
    Alcotest.test_case "use before def: one branch only" `Quick
      test_use_before_def_one_branch;
    Alcotest.test_case "defined on both branches accepted" `Quick
      test_def_on_both_branches_ok;
    Alcotest.test_case "loop-carried definition accepted" `Quick test_loop_carried_def_ok;
    Alcotest.test_case "fuzz breakages all detected" `Quick
      test_fuzz_breakages_all_detected;
  ]
